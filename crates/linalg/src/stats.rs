//! Per-column statistics and feature standardisation.
//!
//! The GRBM assumes unit-variance Gaussian visible units (Section III-B of
//! the paper), so real-valued inputs are standardised column-wise before
//! training. [`Standardizer`] is fit on a training matrix and can then be
//! applied to any matrix with the same number of columns, including the
//! reconstructed visible layer.

use crate::{LinalgError, Matrix, ParallelPolicy, Result};
use serde::{Deserialize, Serialize};

/// Per-column mean and standard deviation of a data matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Column means.
    pub means: Vec<f64>,
    /// Column standard deviations (population, i.e. divided by `n`).
    pub stds: Vec<f64>,
}

impl ColumnStats {
    /// Computes column means and standard deviations of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the matrix has no rows.
    pub fn compute(data: &Matrix) -> Result<Self> {
        if data.rows() == 0 {
            return Err(LinalgError::Empty {
                op: "ColumnStats::compute",
            });
        }
        let n = data.rows() as f64;
        let means = data.column_means();
        let mut stds = vec![0.0; data.cols()];
        for row in data.row_iter() {
            for (j, (&x, &m)) in row.iter().zip(&means).enumerate() {
                stds[j] += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        Ok(Self { means, stds })
    }
}

/// Column-wise standardiser: `x -> (x - mean) / std`.
///
/// Columns with zero variance are passed through centred but unscaled to
/// avoid dividing by zero (their standard deviation is treated as `1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    stats: ColumnStats,
}

impl Standardizer {
    /// Fits the standardiser on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the matrix has no rows.
    pub fn fit(data: &Matrix) -> Result<Self> {
        Ok(Self {
            stats: ColumnStats::compute(data)?,
        })
    }

    /// Column statistics captured at fit time.
    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    /// Applies the transformation to `data` under the process-wide
    /// [`ParallelPolicy::global`]; see [`Standardizer::transform_with`] for
    /// an explicit policy.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs
    /// from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        self.transform_with(data, &ParallelPolicy::global())
    }

    /// [`Standardizer::transform`] under an explicit parallel execution
    /// policy: rows are transformed independently through
    /// [`Matrix::map_rows_with`], so results are bitwise identical for
    /// every policy. This is the serving-path variant — preprocessing a
    /// micro-batch rides the same pool the matmul uses.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs
    /// from the fitted data.
    pub fn transform_with(&self, data: &Matrix, policy: &ParallelPolicy) -> Result<Matrix> {
        if data.cols() != self.stats.means.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Standardizer::transform",
                left: data.shape(),
                right: (1, self.stats.means.len()),
            });
        }
        let means = &self.stats.means;
        let stds = &self.stats.stds;
        Ok(data.map_rows_with(data.cols(), policy, |_, row, out| {
            for (j, (o, &x)) in out.iter_mut().zip(row).enumerate() {
                let std = if stds[j] > 0.0 { stds[j] } else { 1.0 };
                *o = (x - means[j]) / std;
            }
        }))
    }

    /// Inverts the transformation (used to map reconstructions back to the
    /// original feature scale).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column count differs
    /// from the fitted data.
    pub fn inverse_transform(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.stats.means.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "Standardizer::inverse_transform",
                left: data.shape(),
                right: (1, self.stats.means.len()),
            });
        }
        let mut out = data.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                let std = if self.stats.stds[j] > 0.0 {
                    self.stats.stds[j]
                } else {
                    1.0
                };
                *x = *x * std + self.stats.means[j];
            }
        }
        Ok(out)
    }

    /// Convenience: fit on `data` and transform it in one call.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the matrix has no rows.
    pub fn fit_transform(data: &Matrix) -> Result<(Self, Matrix)> {
        let s = Self::fit(data)?;
        let t = s.transform(data)?;
        Ok((s, t))
    }
}

impl Matrix {
    /// Rescales every element into `[0, 1]` using the global min and max.
    ///
    /// A constant matrix maps to all zeros. This is the preprocessing used
    /// before Bernoulli binarisation for the binary-visible slsRBM.
    pub fn min_max_normalize(&self) -> Matrix {
        let (Some(min), Some(max)) = (self.min(), self.max()) else {
            return self.clone();
        };
        let range = max - min;
        if range == 0.0 {
            return Matrix::zeros(self.rows(), self.cols());
        }
        self.map(|x| (x - min) / range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0, 5.0],
            vec![3.0, 10.0, 7.0],
            vec![5.0, 10.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn column_stats_values() {
        let s = ColumnStats::compute(&data()).unwrap();
        assert_eq!(s.means, vec![3.0, 10.0, 7.0]);
        let expected_std = (8.0_f64 / 3.0).sqrt();
        assert!((s.stds[0] - expected_std).abs() < 1e-12);
        assert_eq!(s.stds[1], 0.0);
    }

    #[test]
    fn column_stats_empty_errors() {
        assert!(ColumnStats::compute(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let (_, t) = Standardizer::fit_transform(&data()).unwrap();
        let means = t.column_means();
        for m in means {
            assert!(m.abs() < 1e-12);
        }
        // Column 0 should have unit population variance.
        let col: Vec<f64> = t.column(0);
        let var = crate::vector::variance(&col);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardizer_handles_constant_column() {
        let (_, t) = Standardizer::fit_transform(&data()).unwrap();
        // Constant column becomes zeros, not NaN.
        assert!(t.column(1).iter().all(|&x| x == 0.0));
        assert!(t.is_finite());
    }

    #[test]
    fn standardizer_inverse_round_trips() {
        let d = data();
        let (s, t) = Standardizer::fit_transform(&d).unwrap();
        let back = s.inverse_transform(&t).unwrap();
        assert!(back.approx_eq(&d, 1e-9));
    }

    #[test]
    fn standardizer_shape_errors() {
        let s = Standardizer::fit(&data()).unwrap();
        let wrong = Matrix::zeros(2, 5);
        assert!(s.transform(&wrong).is_err());
        assert!(s.inverse_transform(&wrong).is_err());
    }

    #[test]
    fn standardizer_transform_with_is_bitwise_identical_across_policies() {
        let d = Matrix::from_fn(37, 5, |i, j| (i as f64) * 0.7 - (j as f64) * 1.3);
        let s = Standardizer::fit(&d).unwrap();
        let serial = s.transform_with(&d, &ParallelPolicy::serial()).unwrap();
        for pool in [false, true] {
            let policy = ParallelPolicy::new(4)
                .with_min_rows_per_thread(1)
                .with_pool(pool);
            let par = s.transform_with(&d, &policy).unwrap();
            let same = serial
                .as_slice()
                .iter()
                .zip(par.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "pool = {pool}");
        }
    }

    #[test]
    fn min_max_normalize_bounds() {
        let m = Matrix::from_rows(&[vec![-2.0, 0.0], vec![2.0, 6.0]]).unwrap();
        let n = m.min_max_normalize();
        assert_eq!(n.min(), Some(0.0));
        assert_eq!(n.max(), Some(1.0));
        assert!((n[(0, 1)] - 0.25).abs() < 1e-12);
        // Constant matrix maps to zeros.
        let c = Matrix::filled(2, 2, 3.0).min_max_normalize();
        assert_eq!(c.sum(), 0.0);
    }
}
