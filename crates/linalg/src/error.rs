//! Error type shared by the fallible linear-algebra routines.

use std::fmt;

/// Errors produced by construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// A matrix constructor was given data whose length does not match the
    /// requested `rows * cols` shape.
    DataShapeMismatch {
        /// Rows requested by the caller.
        rows: usize,
        /// Columns requested by the caller.
        cols: usize,
        /// Length of the data actually supplied.
        data_len: usize,
    },
    /// The rows supplied to [`crate::Matrix::from_rows`] have differing
    /// lengths.
    RaggedRows {
        /// Length of the first row, treated as the expected width.
        expected: usize,
        /// Index of the first offending row.
        row: usize,
        /// Its length.
        found: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Operation name, for diagnostics.
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// An operation that requires a non-empty matrix received an empty one.
    Empty {
        /// Operation name, for diagnostics.
        op: &'static str,
    },
    /// A row or column index is out of bounds for a checked accessor.
    IndexOutOfBounds {
        /// Axis name (`"row"` or `"column"`).
        axis: &'static str,
        /// Offending index.
        index: usize,
        /// Length of the axis.
        len: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DataShapeMismatch {
                rows,
                cols,
                data_len,
            } => write!(
                f,
                "data of length {data_len} cannot form a {rows}x{cols} matrix"
            ),
            LinalgError::RaggedRows {
                expected,
                row,
                found,
            } => write!(
                f,
                "row {row} has length {found}, expected {expected} (ragged input)"
            ),
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Empty { op } => write!(f, "{op} requires a non-empty matrix"),
            LinalgError::IndexOutOfBounds { axis, index, len } => {
                write!(f, "{axis} index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_data_shape_mismatch() {
        let e = LinalgError::DataShapeMismatch {
            rows: 2,
            cols: 3,
            data_len: 5,
        };
        assert_eq!(e.to_string(), "data of length 5 cannot form a 2x3 matrix");
    }

    #[test]
    fn display_ragged_rows() {
        let e = LinalgError::RaggedRows {
            expected: 4,
            row: 2,
            found: 3,
        };
        assert!(e.to_string().contains("row 2"));
        assert!(e.to_string().contains("expected 4"));
    }

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
    }

    #[test]
    fn display_empty_and_index() {
        assert!(LinalgError::Empty { op: "column_means" }
            .to_string()
            .contains("column_means"));
        let e = LinalgError::IndexOutOfBounds {
            axis: "row",
            index: 9,
            len: 3,
        };
        assert!(e.to_string().contains("row index 9"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
