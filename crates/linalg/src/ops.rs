//! Matrix-level arithmetic: products, transposed products, broadcasting and
//! element-wise combinations.
//!
//! Contrastive divergence needs three product shapes per mini-batch:
//! `V · W` (visible → hidden pre-activations), `H · Wᵀ` (hidden → visible
//! reconstruction) and `Vᵀ · H` (the positive/negative statistics
//! `<v_i h_j>`). [`Matrix::matmul_transpose_right`] and
//! [`Matrix::matmul_transpose_left`] compute the latter two without
//! materialising the transpose.

use crate::{LinalgError, Matrix, ParallelPolicy, Result};

impl Matrix {
    /// Standard matrix product `self · other`.
    ///
    /// Runs under the process-wide [`ParallelPolicy::global`] (serial unless
    /// configured otherwise); see [`Matrix::matmul_with`] for an explicit
    /// policy. All products are IEEE-faithful: a NaN or infinity anywhere in
    /// either operand propagates into the result, even when the matching
    /// element of the other operand is zero.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_with(other, &ParallelPolicy::global())
    }

    /// Product with the right operand transposed: `self · otherᵀ`.
    ///
    /// Both operands must have the same number of columns. Runs under the
    /// process-wide [`ParallelPolicy::global`]; see
    /// [`Matrix::matmul_transpose_right_with`] for an explicit policy.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.cols()`.
    pub fn matmul_transpose_right(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_transpose_right_with(other, &ParallelPolicy::global())
    }

    /// Product with the left operand transposed: `selfᵀ · other`.
    ///
    /// Both operands must have the same number of rows. This is the shape of
    /// the CD statistics `Vᵀ H` (a `n_visible x n_hidden` matrix). Runs under
    /// the process-wide [`ParallelPolicy::global`]; see
    /// [`Matrix::matmul_transpose_left_with`] for an explicit policy.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows() != other.rows()`.
    pub fn matmul_transpose_left(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_transpose_left_with(other, &ParallelPolicy::global())
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Combines two equally-shaped matrices element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// `self += alpha * other`, in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled_assign(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add_scaled_assign",
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, returning a new matrix.
    pub fn scale(&self, alpha: f64) -> Matrix {
        self.map(|x| alpha * x)
    }

    /// Adds `row` to every row of `self` (broadcasting along the row axis).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&self, row: &[f64]) -> Result<Matrix> {
        if row.len() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "add_row_broadcast",
                left: self.shape(),
                right: (1, row.len()),
            });
        }
        let mut out = self.clone();
        for i in 0..out.rows() {
            crate::vector::add_assign(out.row_mut(i), row);
        }
        Ok(out)
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        // Same canonical-order dot as `matmul_transpose_right`, so a
        // matrix-vector product stays bitwise-consistent with the one-row
        // matrix product under every SIMD setting.
        let simd = ParallelPolicy::global().simd;
        Ok(self
            .row_iter()
            .map(|r| crate::simd::dot(r, x, simd))
            .collect())
    }

    /// Vector-matrix product `xᵀ · self` (row vector times matrix).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "vecmat",
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols()];
        // No zero-skip on `xi`: `0.0 × NaN` must stay NaN (IEEE) so a
        // diverged matrix is never masked by a sparse vector. The inner
        // axpy is element-wise, so the SIMD layer keeps the accumulation
        // order (ascending i) bit-for-bit.
        let simd = ParallelPolicy::global().simd;
        for (i, &xi) in x.iter().enumerate() {
            crate::simd::axpy(xi, self.row(i), &mut out, simd);
        }
        Ok(out)
    }

    /// Outer product `a ⊗ b` of two vectors, as an `a.len() x b.len()` matrix.
    pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
        Matrix::from_fn(a.len(), b.len(), |i, j| a[i] * b[j])
    }

    /// Column sums as a vector of length `cols`.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols()];
        for row in self.row_iter() {
            crate::vector::add_assign(&mut sums, row);
        }
        sums
    }

    /// Column means as a vector of length `cols`; zeros if there are no rows.
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows() == 0 {
            return vec![0.0; self.cols()];
        }
        let mut sums = self.column_sums();
        crate::vector::scale_assign(1.0 / self.rows() as f64, &mut sums);
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]]).unwrap()
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let c = a().matmul(&b()).unwrap();
        let expected = Matrix::from_rows(&[
            vec![27.0, 30.0, 33.0],
            vec![61.0, 68.0, 75.0],
            vec![95.0, 106.0, 117.0],
        ])
        .unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_shape_mismatch() {
        assert!(a().matmul(&a()).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        assert_eq!(m.matmul(&Matrix::identity(2)).unwrap(), m);
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let m = a();
        let n = b();
        // m (3x2), n (2x3): m · n == m.matmul_transpose_right(nᵀ)
        let direct = m.matmul(&n).unwrap();
        let via_tr = m.matmul_transpose_right(&n.transpose()).unwrap();
        assert!(direct.approx_eq(&via_tr, 1e-12));

        // mᵀ · m == m.matmul_transpose_left(m)
        let gram = m.transpose().matmul(&m).unwrap();
        let via_tl = m.matmul_transpose_left(&m).unwrap();
        assert!(gram.approx_eq(&via_tl, 1e-12));
    }

    #[test]
    fn transposed_products_shape_errors() {
        assert!(a().matmul_transpose_right(&b()).is_err());
        assert!(a().matmul_transpose_left(&b()).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let m = a();
        let sum = m.add(&m).unwrap();
        assert_eq!(sum[(2, 1)], 12.0);
        let diff = m.sub(&m).unwrap();
        assert_eq!(diff.sum(), 0.0);
        let prod = m.hadamard(&m).unwrap();
        assert_eq!(prod[(1, 0)], 9.0);
        assert!(m.add(&b()).is_err());
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut m = a();
        let other = a();
        m.add_scaled_assign(0.5, &other).unwrap();
        assert_eq!(m[(0, 0)], 1.5);
        assert!(m.add_scaled_assign(1.0, &b()).is_err());
    }

    #[test]
    fn scale_returns_new() {
        let m = a().scale(10.0);
        assert_eq!(m[(0, 1)], 20.0);
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let m = a().add_row_broadcast(&[100.0, 200.0]).unwrap();
        assert_eq!(m[(0, 0)], 101.0);
        assert_eq!(m[(2, 1)], 206.0);
        assert!(a().add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = a();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn outer_product() {
        let o = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o[(1, 2)], 10.0);
    }

    #[test]
    fn column_sums_and_means() {
        let m = a();
        assert_eq!(m.column_sums(), vec![9.0, 12.0]);
        assert_eq!(m.column_means(), vec![3.0, 4.0]);
        let empty = Matrix::zeros(0, 3);
        assert_eq!(empty.column_means(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn matmul_handles_sparse_left_operand() {
        let sparse = Matrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 0.0]]).unwrap();
        let c = sparse.matmul(&b()).unwrap();
        let dense_equiv =
            Matrix::from_rows(&[vec![20.0, 22.0, 24.0], vec![21.0, 24.0, 27.0]]).unwrap();
        assert_eq!(c, dense_equiv);
    }

    #[test]
    fn matmul_propagates_nan_past_zero_entries() {
        // Regression: a `a_ip == 0.0 { continue; }` shortcut used to skip
        // `0.0 × NaN`, so a diverged weight matrix went undetected whenever
        // the left operand had zeros — the common case on binarized data.
        let mostly_zero = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 0.0]]).unwrap();
        let mut diverged = b();
        diverged[(0, 1)] = f64::NAN;
        let c = mostly_zero.matmul(&diverged).unwrap();
        // Row 0 multiplies the NaN row of `diverged` by 0.0: still NaN.
        assert!(c[(0, 1)].is_nan());
        assert!(c[(1, 1)].is_nan());
        assert!(!c.is_finite());

        // Same IEEE semantics for infinities: 0.0 × inf = NaN.
        let mut inf = b();
        inf[(0, 0)] = f64::INFINITY;
        let c = mostly_zero.matmul(&inf).unwrap();
        assert!(c[(1, 0)].is_nan());
    }

    #[test]
    fn transpose_left_and_vecmat_propagate_nan_past_zero_entries() {
        // `matmul_transpose_left` skipped on zeros of the (transposed) left
        // operand; `vecmat` skipped on zeros of the vector. Both must
        // propagate NaN from the other operand.
        let left = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 2.0]]).unwrap();
        let mut right = Matrix::from_rows(&[vec![1.0], vec![f64::NAN]]).unwrap();
        let c = left.matmul_transpose_left(&right).unwrap();
        assert!(c[(0, 0)].is_nan(), "column of zeros × NaN row must be NaN");
        assert!(c[(1, 0)].is_nan());
        right[(1, 0)] = 1.0;
        assert!(left.matmul_transpose_left(&right).unwrap().is_finite());

        let m = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![2.0, 3.0]]).unwrap();
        let out = m.vecmat(&[0.0, 1.0]).unwrap();
        assert!(out[0].is_nan(), "0.0 × NaN row must poison the output");
    }
}
