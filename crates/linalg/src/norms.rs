//! Distances between instances and pairwise distance matrices.
//!
//! Density peaks and affinity propagation both consume a full pairwise
//! distance (or similarity) matrix; k-means needs point-to-centre distances.
//! These helpers centralise that logic so every clusterer measures distance
//! identically.

use crate::{vector, Matrix, ParallelPolicy};

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean_distance(a, b).sqrt()
}

/// Full symmetric pairwise Euclidean distance matrix of the rows of `data`.
///
/// The result is an `n x n` matrix with zeros on the diagonal.
pub fn pairwise_distances(data: &Matrix) -> Matrix {
    let n = data.rows();
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = euclidean_distance(data.row(i), data.row(j));
            d[(i, j)] = dist;
            d[(j, i)] = dist;
        }
    }
    d
}

/// Policy-aware variant of [`pairwise_distances`]: every output row is
/// computed independently through the pooled row kernel.
///
/// Each ordered pair is evaluated from scratch (the parallel version does
/// twice the arithmetic of the serial half-matrix fill), but the coordinate
/// sum `Σ (xᵢ - yᵢ)²` is symmetric in its arguments, so the result is
/// bitwise identical to [`pairwise_distances`].
pub fn pairwise_distances_with(data: &Matrix, policy: &ParallelPolicy) -> Matrix {
    let n = data.rows();
    data.map_rows_with(n, policy, |i, row, out| {
        for (j, slot) in out.iter_mut().enumerate() {
            if j != i {
                *slot = euclidean_distance(row, data.row(j));
            }
        }
    })
}

impl Matrix {
    /// Index of the row of `self` closest (in Euclidean distance) to `point`.
    ///
    /// Returns `None` if the matrix has no rows.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.cols()`.
    pub fn nearest_row(&self, point: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, row) in self.row_iter().enumerate() {
            let d = squared_euclidean_distance(row, point);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Euclidean norm of each row.
    pub fn row_norms(&self) -> Vec<f64> {
        self.row_iter().map(vector::l2_norm).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_basic() {
        assert_eq!(squared_euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn distance_length_mismatch_panics() {
        euclidean_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_zero_diagonal() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]]).unwrap();
        let d = pairwise_distances(&data);
        assert_eq!(d.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..3 {
                assert_eq!(d[(i, j)], d[(j, i)]);
            }
        }
        assert_eq!(d[(0, 1)], 5.0);
        assert_eq!(d[(0, 2)], 10.0);
        assert_eq!(d[(1, 2)], 5.0);
    }

    #[test]
    fn pairwise_with_matches_serial_bitwise() {
        let data = Matrix::from_rows(&[
            vec![0.1, -0.7, 2.3],
            vec![3.0, 4.0, -1.5],
            vec![6.0, 8.0, 0.25],
            vec![-2.0, 0.0, 1.0 / 3.0],
            vec![0.1, -0.7, 2.3],
        ])
        .unwrap();
        let serial = pairwise_distances(&data);
        for threads in [1, 2, 4, 8] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool);
                let parallel = pairwise_distances_with(&data, &policy);
                assert_eq!(serial.as_slice(), parallel.as_slice());
            }
        }
    }

    #[test]
    fn nearest_row_finds_closest_centre() {
        let centres = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        assert_eq!(centres.nearest_row(&[1.0, 1.0]), Some(0));
        assert_eq!(centres.nearest_row(&[9.0, 8.0]), Some(1));
        assert_eq!(Matrix::zeros(0, 2).nearest_row(&[1.0, 1.0]), None);
    }

    #[test]
    fn nearest_row_ties_prefer_first() {
        let centres = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        assert_eq!(centres.nearest_row(&[0.0]), Some(0));
    }

    #[test]
    fn row_norms_per_row() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        assert_eq!(m.row_norms(), vec![5.0, 0.0]);
    }
}
