//! Row-partitioned parallel execution for the matrix kernels.
//!
//! Every product in the workspace's hot paths — `V·W` (visible → hidden
//! pre-activations), `H·Wᵀ` (reconstruction) and `Vᵀ·H` (CD statistics) —
//! writes each output row independently, so the natural parallel
//! decomposition is to hand contiguous blocks of *output rows* to scoped
//! threads ([`std::thread::scope`], no extra dependency, no `'static`
//! bounds).
//!
//! ## Bitwise reproducibility
//!
//! Row partitioning never splits the accumulation of a single output
//! element across threads: each output row is produced by exactly one
//! thread running the exact serial inner loop, in the exact serial
//! accumulation order. Parallel results are therefore **bitwise identical**
//! to serial results for every thread count — the paper's tables reproduce
//! identically whether a run used 1 thread or 16. The property tests in
//! `tests/properties.rs` assert this across random shapes and policies.
//!
//! ## Policy
//!
//! [`ParallelPolicy`] carries the thread budget and a `min_rows_per_thread`
//! cutover: a kernel only fans out when every thread would receive at least
//! that many rows, so small matrices (single serving rows, tiny batches)
//! never pay thread-spawn latency. The process-wide default policy is
//! serial; it can be overridden programmatically
//! ([`ParallelPolicy::set_global`]) or through the environment
//! (`SLS_PARALLEL_THREADS`, `SLS_PARALLEL_MIN_ROWS`, `SLS_PARALLEL_POOL`),
//! which is how CI runs the whole test suite with parallel kernels forced
//! on.
//!
//! ## Dispatch: spawn-per-call vs the persistent pool
//!
//! A fanned-out kernel executes its row bands either on fresh scoped
//! threads (`pool = false`, the spawn-per-call path) or on the process-wide
//! persistent [`WorkerPool`] (`pool = true`), which removes the ~10–50 µs
//! thread-spawn cost from every call — the difference that makes small
//! serving micro-batches profitable to parallelise. Both paths run the
//! identical per-row code, so the choice never changes a single output bit.

use crate::pool::WorkerPool;
use crate::simd::{self, SimdPolicy};
use crate::{LinalgError, Matrix, Result};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Once;

/// Default `min_rows_per_thread`: small enough that training-scale matrices
/// fan out, large enough that single-row serving requests stay serial.
pub const DEFAULT_MIN_ROWS_PER_THREAD: usize = 64;

/// Environment variable naming the global thread budget (`0` = one thread
/// per available core).
pub const ENV_THREADS: &str = "SLS_PARALLEL_THREADS";

/// Environment variable overriding the global `min_rows_per_thread` cutover.
pub const ENV_MIN_ROWS: &str = "SLS_PARALLEL_MIN_ROWS";

/// Environment variable enabling the persistent worker pool for the global
/// policy (`1`/`true` to enable, `0`/`false` to disable).
pub const ENV_POOL: &str = "SLS_PARALLEL_POOL";

/// Environment variable overriding the global pooled-dispatch chunk size
/// (rows per chunk; `0` = adaptive — see [`ParallelPolicy::chunk_rows`]).
pub const ENV_CHUNK_ROWS: &str = "SLS_PARALLEL_CHUNK_ROWS";

/// Environment variable selecting the SIMD execution layer for the global
/// policy (`1`/`true` for the unrolled 4-lane inner loops — the default —
/// `0`/`false` for the scalar fallback). Outputs are bitwise identical
/// either way; see [`SimdPolicy`].
pub const ENV_SIMD: &str = "SLS_SIMD";

static GLOBAL_INIT: Once = Once::new();
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(1);
static GLOBAL_MIN_ROWS: AtomicUsize = AtomicUsize::new(DEFAULT_MIN_ROWS_PER_THREAD);
static GLOBAL_POOL: AtomicBool = AtomicBool::new(false);
static GLOBAL_SIMD: AtomicBool = AtomicBool::new(true);
static GLOBAL_CHUNK_ROWS: AtomicUsize = AtomicUsize::new(0);

/// How (and whether) the matrix kernels fan work out across threads.
///
/// A policy is a plain value: cheap to copy, serialisable (though nothing
/// in the workspace persists one — `SlsPipelineConfig` deliberately skips
/// its policy so artifacts never bake in a machine's core count), and
/// inert — `threads = 1` *is* the serial implementation, not a special
/// case around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Maximum number of worker threads a kernel may use (at least 1).
    pub threads: usize,
    /// A kernel stays serial unless every thread would receive at least
    /// this many output rows.
    pub min_rows_per_thread: usize,
    /// Execute row bands on the process-wide persistent [`WorkerPool`]
    /// instead of spawning scoped threads per call. Outputs are bitwise
    /// identical either way; the pool only removes per-call spawn latency.
    pub pool: bool,
    /// Which inner-loop execution layer the kernels use: the unrolled
    /// autovectorisable form ([`SimdPolicy::Lanes4`], the default) or the
    /// scalar fallback. Both compute the same canonical reduction order, so
    /// outputs are bitwise identical either way.
    pub simd: SimdPolicy,
    /// Rows per chunk for pooled dispatch; `0` (the default) sizes chunks
    /// adaptively from the row count and a per-row cost hint (see
    /// [`ParallelPolicy::chunk_rows`]). Pooled kernel calls are split into
    /// *more chunks than threads* so the pool's work-stealing can rebalance
    /// ragged per-row costs; the chunk size only reorders *when* a row is
    /// computed, never its accumulation order, so every value is bitwise
    /// identical for every chunk size.
    pub chunk_rows: usize,
}

// Hand-written (de)serialisation instead of the derive: `ParallelPolicy`
// has been a public `Serialize`/`Deserialize` type since before the `pool`,
// `simd` and `chunk_rows` fields existed, so policy JSON persisted by
// earlier builds lacks them. The vendored derive treats every named field
// as required (it skips attributes, so `#[serde(default)]` would be
// silently ignored); these impls accept a missing `pool` as `false` — the
// exact behaviour of the builds that wrote such documents — a missing
// `simd` as enabled, and a missing `chunk_rows` as adaptive (`0`), the
// crate-wide defaults (safe because neither the SIMD layer nor the chunk
// size ever changes an output bit, unlike `pool = true` which would change
// *which threads* run).
impl serde::Serialize for ParallelPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("threads".to_string(), self.threads.to_value()),
            (
                "min_rows_per_thread".to_string(),
                self.min_rows_per_thread.to_value(),
            ),
            ("pool".to_string(), self.pool.to_value()),
            ("simd".to_string(), self.simd.is_enabled().to_value()),
            ("chunk_rows".to_string(), self.chunk_rows.to_value()),
        ])
    }
}

impl serde::Deserialize for ParallelPolicy {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::DeError::mismatch("object", value))?;
        let pool = match entries.iter().find(|(name, _)| name == "pool") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => false,
        };
        let simd = match entries.iter().find(|(name, _)| name == "simd") {
            Some((_, v)) => SimdPolicy::from_enabled(serde::Deserialize::from_value(v)?),
            None => SimdPolicy::default(),
        };
        let chunk_rows = match entries.iter().find(|(name, _)| name == "chunk_rows") {
            Some((_, v)) => serde::Deserialize::from_value(v)?,
            None => 0,
        };
        Ok(Self {
            threads: serde::Deserialize::from_value(serde::field(entries, "threads")?)?,
            min_rows_per_thread: serde::Deserialize::from_value(serde::field(
                entries,
                "min_rows_per_thread",
            )?)?,
            pool,
            simd,
            chunk_rows,
        })
    }
}

impl Default for ParallelPolicy {
    /// The default policy is serial — parallelism is always opt-in.
    fn default() -> Self {
        Self::serial()
    }
}

impl ParallelPolicy {
    /// Strictly serial execution (1 thread).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            min_rows_per_thread: DEFAULT_MIN_ROWS_PER_THREAD,
            pool: false,
            simd: SimdPolicy::default(),
            chunk_rows: 0,
        }
    }

    /// A policy with the given thread budget; `0` resolves to one thread
    /// per available core.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: resolve_threads(threads),
            min_rows_per_thread: DEFAULT_MIN_ROWS_PER_THREAD,
            pool: false,
            simd: SimdPolicy::default(),
            chunk_rows: 0,
        }
    }

    /// One thread per available core.
    pub fn auto() -> Self {
        Self::new(0)
    }

    /// Overrides the serial cutover (clamped to at least 1 row per thread).
    pub fn with_min_rows_per_thread(mut self, min_rows_per_thread: usize) -> Self {
        self.min_rows_per_thread = min_rows_per_thread.max(1);
        self
    }

    /// Routes fanned-out kernels through the process-wide persistent
    /// [`WorkerPool`] instead of spawning scoped threads per call. Results
    /// are bitwise identical either way.
    pub fn with_pool(mut self, pool: bool) -> Self {
        self.pool = pool;
        self
    }

    /// Selects the inner-loop execution layer (unrolled 4-lane vs scalar
    /// fallback). Results are bitwise identical either way; see
    /// [`SimdPolicy`].
    pub fn with_simd(mut self, simd: SimdPolicy) -> Self {
        self.simd = simd;
        self
    }

    /// Fixes the pooled-dispatch chunk size to `chunk_rows` rows per chunk
    /// (`0` restores the adaptive default). Results are bitwise identical
    /// for every chunk size — the knob only trades scheduling overhead
    /// against stealing granularity.
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows;
        self
    }

    /// Parses the boolean spellings accepted wherever a pool flag is read —
    /// the `SLS_PARALLEL_POOL` environment variable and CLI `--pool` flags:
    /// `1`/`true` and `0`/`false`, case-insensitively, ignoring surrounding
    /// whitespace. One parser for every surface, so no spelling is accepted
    /// in one place and rejected in another.
    pub fn parse_bool(raw: &str) -> Option<bool> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" => Some(true),
            "0" | "false" => Some(false),
            _ => None,
        }
    }

    /// `true` if this policy can never fan out.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Number of threads a kernel producing `rows` output rows should use
    /// under this policy: capped by the thread budget and by the cutover
    /// (`rows / min_rows_per_thread`), never below 1. The result is already
    /// clamped to `[1, rows]` (for `rows >= 1`), so callers need no further
    /// clamping.
    pub fn effective_threads(&self, rows: usize) -> usize {
        let per_thread = self.min_rows_per_thread.max(1);
        self.threads.max(1).min(rows / per_thread).max(1)
    }

    /// Rows per chunk a pooled kernel call producing `rows` output rows
    /// should be split into, given `threads` participating threads and a
    /// per-row cost hint (`row_cost`, roughly the number of f64 operations
    /// one output row performs).
    ///
    /// A fixed `chunk_rows` (set via [`ParallelPolicy::with_chunk_rows`] or
    /// `SLS_PARALLEL_CHUNK_ROWS`) wins outright. The adaptive default aims
    /// for [`Self::CHUNKS_PER_THREAD`] chunks per thread — enough slack for
    /// the pool's work-stealing to pull a straggling band apart — floored so
    /// one chunk still carries at least [`Self::MIN_CHUNK_ROW_OPS`] worth of
    /// row work (so tiny rows don't drown in scheduling overhead), and
    /// capped at one equal band per thread (chunking must never *reduce*
    /// the parallelism an equal split would get).
    ///
    /// Chunk boundaries never split a row, so every chunk size — adaptive,
    /// forced tiny, or forced band-sized — produces bitwise identical
    /// output; only the straggler behaviour changes.
    pub fn chunk_rows(&self, rows: usize, row_cost: usize, threads: usize) -> usize {
        let band = rows.div_ceil(threads.max(1)).max(1);
        if self.chunk_rows > 0 {
            return self.chunk_rows.min(rows).max(1);
        }
        let by_split = rows
            .div_ceil(threads.max(1) * Self::CHUNKS_PER_THREAD)
            .max(1);
        let by_cost = Self::MIN_CHUNK_ROW_OPS.div_ceil(row_cost.max(1)).max(1);
        by_split.max(by_cost).min(band)
    }

    /// Adaptive chunking targets this many chunks per participating thread:
    /// enough over-partitioning that stealing can rebalance a band that
    /// turns out ~8x heavier than its peers, small enough that per-chunk
    /// dispatch stays negligible against real row work.
    pub const CHUNKS_PER_THREAD: usize = 4;

    /// Adaptive chunking keeps at least this many estimated f64 operations
    /// per chunk, so narrow rows get grouped until a chunk is worth
    /// dispatching (~a few microseconds of work).
    pub const MIN_CHUNK_ROW_OPS: usize = 16 * 1024;

    /// The process-wide default policy consulted by the plain (`_with`-less)
    /// kernel methods.
    ///
    /// On first use it is initialised from the environment: `SLS_PARALLEL_THREADS`
    /// (`0` = one thread per core), `SLS_PARALLEL_MIN_ROWS`,
    /// `SLS_PARALLEL_POOL` (`1`/`true` routes kernels through the
    /// persistent worker pool), `SLS_PARALLEL_CHUNK_ROWS` (rows per pooled
    /// chunk; `0` = adaptive) and `SLS_SIMD` (`0`/`false` selects the
    /// scalar fallback inner loops; default on). Without those variables
    /// the default is serial with SIMD enabled and adaptive chunking.
    ///
    /// # Panics
    ///
    /// Panics on first use if any of the variables is set to an unparsable
    /// value — a typo must not silently disable the parallel path the
    /// variable was set to force.
    pub fn global() -> Self {
        init_global_from_env();
        Self {
            threads: GLOBAL_THREADS.load(Ordering::Relaxed),
            min_rows_per_thread: GLOBAL_MIN_ROWS.load(Ordering::Relaxed),
            pool: GLOBAL_POOL.load(Ordering::Relaxed),
            simd: SimdPolicy::from_enabled(GLOBAL_SIMD.load(Ordering::Relaxed)),
            chunk_rows: GLOBAL_CHUNK_ROWS.load(Ordering::Relaxed),
        }
    }

    /// Replaces the process-wide default policy.
    ///
    /// Because parallel results are bitwise identical to serial results,
    /// changing the global policy never changes any computed value — only
    /// how many threads compute it.
    pub fn set_global(policy: ParallelPolicy) {
        // Mark env initialisation as done so a later `global()` cannot
        // clobber an explicit override.
        GLOBAL_INIT.call_once(|| {});
        GLOBAL_THREADS.store(policy.threads.max(1), Ordering::Relaxed);
        GLOBAL_MIN_ROWS.store(policy.min_rows_per_thread.max(1), Ordering::Relaxed);
        GLOBAL_POOL.store(policy.pool, Ordering::Relaxed);
        GLOBAL_SIMD.store(policy.simd.is_enabled(), Ordering::Relaxed);
        GLOBAL_CHUNK_ROWS.store(policy.chunk_rows, Ordering::Relaxed);
    }
}

/// Resolves a requested thread count: `0` means one thread per core.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

fn init_global_from_env() {
    GLOBAL_INIT.call_once(|| {
        if let Some(threads) = read_env_usize(ENV_THREADS) {
            GLOBAL_THREADS.store(resolve_threads(threads), Ordering::Relaxed);
        }
        if let Some(min_rows) = read_env_usize(ENV_MIN_ROWS) {
            GLOBAL_MIN_ROWS.store(min_rows.max(1), Ordering::Relaxed);
        }
        if let Some(pool) = read_env_bool(ENV_POOL) {
            GLOBAL_POOL.store(pool, Ordering::Relaxed);
        }
        if let Some(simd) = read_env_bool(ENV_SIMD) {
            GLOBAL_SIMD.store(simd, Ordering::Relaxed);
        }
        if let Some(chunk_rows) = read_env_usize(ENV_CHUNK_ROWS) {
            GLOBAL_CHUNK_ROWS.store(chunk_rows, Ordering::Relaxed);
        }
    });
}

/// Reads an integer environment variable. A *set but unparsable* value
/// panics instead of being silently ignored: the variable's whole purpose
/// is forcing the parallel path (e.g. CI's correctness gate), and a typo
/// that quietly fell back to serial would make that gate test nothing.
fn read_env_usize(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(value) => Some(value),
        Err(_) => panic!("{name} must be a non-negative integer, got `{raw}`"),
    }
}

/// Reads a boolean environment variable (`1`/`true`/`0`/`false`), with the
/// same set-but-unparsable panic policy as [`read_env_usize`].
fn read_env_bool(name: &str) -> Option<bool> {
    let raw = std::env::var(name).ok()?;
    match ParallelPolicy::parse_bool(&raw) {
        Some(value) => Some(value),
        None => panic!("{name} must be one of 1/true/0/false, got `{raw}`"),
    }
}

/// Splits `out` into contiguous row blocks and runs `work` on each block
/// under `policy` — inline when the effective thread count is 1, otherwise
/// on scoped threads (spawn-per-call, one equal band per thread) or the
/// persistent [`WorkerPool`] (chunked, see below).
///
/// `work` receives the half-open range of row indices it owns and the
/// mutable storage of exactly those rows. `row_cost` is the kernel's
/// estimate of f64 operations per output row — the cost hint adaptive
/// chunking sizes chunks with.
///
/// On the pool path the call is split into *more chunks than threads*
/// ([`ParallelPolicy::chunk_rows`]): equal row counts are not equal costs
/// once per-row work is ragged, and over-partitioning plus the pool's
/// steal-half scheduling keeps every thread busy until the last chunk
/// retires instead of idling behind one straggling band. Chunk boundaries
/// never split a row's accumulation, so output is bitwise identical for
/// every chunk size, thread count and dispatch mode. The calling thread
/// executes the first chunk itself, then drains its scope's remaining
/// chunks through the pool's help path.
///
/// When already executing a pool job (a nested kernel inside a row closure
/// — whether that closure runs on a worker thread or on a scope waiter's
/// help path), the work runs inline *regardless of the nested policy's
/// `pool` flag*: a nested pooled call would round-trip the queues for no
/// win, and a nested spawn-path call would stack fresh scoped threads on
/// top of already-busy workers — every pool thread is computing, so inline
/// is both the cheapest and the only non-oversubscribing choice. The
/// inline result is bitwise identical anyway.
fn for_each_row_block(
    out: &mut [f64],
    rows: usize,
    row_width: usize,
    row_cost: usize,
    policy: &ParallelPolicy,
    work: &(impl Fn(Range<usize>, &mut [f64]) + Sync),
) {
    let mut threads = policy.effective_threads(rows);
    if threads > 1 && WorkerPool::on_worker_thread() {
        threads = 1;
    }
    if threads == 1 {
        work(0..rows, out);
        return;
    }
    if policy.pool {
        let chunk_rows = policy.chunk_rows(rows, row_cost, threads);
        let mut blocks = Vec::with_capacity(rows.div_ceil(chunk_rows));
        let mut rest = out;
        let mut start = 0;
        while start < rows {
            let block_rows = chunk_rows.min(rows - start);
            let (block, tail) = rest.split_at_mut(block_rows * row_width);
            rest = tail;
            blocks.push((start..start + block_rows, block));
            start += block_rows;
        }
        WorkerPool::global().scope(|scope| {
            let mut blocks = blocks.into_iter();
            let (first_range, first_block) = blocks.next().expect("rows >= 1 chunk");
            for (range, block) in blocks {
                scope.spawn(move || work(range, block));
            }
            // The submitter is a full participant: it processes the first
            // chunk while the workers process (and steal) the rest, then
            // helps drain this scope's remaining chunks.
            work(first_range, first_block);
        });
    } else {
        let base = rows / threads;
        let extra = rows % threads;
        let mut blocks = Vec::with_capacity(threads);
        let mut rest = out;
        let mut start = 0;
        for t in 0..threads {
            let block_rows = base + usize::from(t < extra);
            let (block, tail) = rest.split_at_mut(block_rows * row_width);
            rest = tail;
            blocks.push((start..start + block_rows, block));
            start += block_rows;
        }
        std::thread::scope(|scope| {
            for (range, block) in blocks {
                scope.spawn(move || work(range, block));
            }
        });
    }
}

impl Matrix {
    /// [`Matrix::matmul`] under an explicit [`ParallelPolicy`]: output rows
    /// are partitioned across threads; each row keeps the serial
    /// accumulation order, so the result is bitwise identical to serial.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul_with(&self, other: &Matrix, policy: &ParallelPolicy) -> Result<Matrix> {
        if self.cols() != other.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (n, m) = (self.rows(), other.cols());
        let mut out = Matrix::zeros(n, m);
        if n == 0 || m == 0 {
            return Ok(out);
        }
        let simd = policy.simd;
        let row_cost = self.cols().saturating_mul(m);
        for_each_row_block(
            out.as_mut_slice(),
            n,
            m,
            row_cost,
            policy,
            &|range, block| {
                // i-p-j order keeps the inner loop contiguous over `other`'s rows
                // and the output row; the inner axpy is element-wise, so the
                // SIMD layer never changes its accumulation order. No zero-skip
                // on `a_ip`: `0.0 × NaN` must produce NaN (IEEE), so a diverged
                // operand is never masked.
                for (i, out_row) in range.zip(block.chunks_mut(m)) {
                    let a_row = self.row(i);
                    for (p, &a_ip) in a_row.iter().enumerate() {
                        simd::axpy(a_ip, other.row(p), out_row, simd);
                    }
                }
            },
        );
        Ok(out)
    }

    /// [`Matrix::matmul_transpose_right`] under an explicit
    /// [`ParallelPolicy`]; bitwise identical to serial. Uses the default
    /// cache tile ([`Matrix::transpose_right_tile_rows`]); see
    /// [`Matrix::matmul_transpose_right_tiled_with`] for an explicit tile.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.cols()`.
    pub fn matmul_transpose_right_with(
        &self,
        other: &Matrix,
        policy: &ParallelPolicy,
    ) -> Result<Matrix> {
        self.matmul_transpose_right_tiled_with(
            other,
            policy,
            Self::transpose_right_tile_rows(self.cols()),
        )
    }

    /// Default `j`-tile for [`Matrix::matmul_transpose_right_with`]: as many
    /// right-operand rows (of `cols` f64 elements each) as fit in ~32 KiB —
    /// an L1d-sized working set — clamped to `[8, 512]`.
    ///
    /// This product is dot-product shaped: every output row walks *all* of
    /// the right operand's rows, so without tiling a right operand larger
    /// than cache is re-streamed from memory once per output row. Processing
    /// output columns in tiles keeps each group of right-operand rows hot
    /// across the whole row band before moving on.
    pub fn transpose_right_tile_rows(cols: usize) -> usize {
        const TILE_BYTES: usize = 32 * 1024;
        (TILE_BYTES / (cols.max(1) * std::mem::size_of::<f64>())).clamp(8, 512)
    }

    /// [`Matrix::matmul_transpose_right_with`] with an explicit `j`-tile
    /// (`tile_rows` right-operand rows per tile; values `>= other.rows()`
    /// disable tiling). Exposed as a tuning/benchmark knob — the tile only
    /// reorders *which output elements are computed when*; every element is
    /// still one full [`mod@crate::simd`] dot in the canonical order, so the
    /// result is bitwise identical for every tile size.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != other.cols()`.
    pub fn matmul_transpose_right_tiled_with(
        &self,
        other: &Matrix,
        policy: &ParallelPolicy,
        tile_rows: usize,
    ) -> Result<Matrix> {
        if self.cols() != other.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose_right",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (n, m) = (self.rows(), other.rows());
        let mut out = Matrix::zeros(n, m);
        if n == 0 || m == 0 {
            return Ok(out);
        }
        let tile = tile_rows.clamp(1, m);
        let simd = policy.simd;
        let row_cost = m.saturating_mul(self.cols());
        for_each_row_block(
            out.as_mut_slice(),
            n,
            m,
            row_cost,
            policy,
            &|range, block| {
                for j0 in (0..m).step_by(tile) {
                    let j1 = (j0 + tile).min(m);
                    for (i, out_row) in range.clone().zip(block.chunks_mut(m)) {
                        let a_row = self.row(i);
                        for (j, out_val) in (j0..j1).zip(out_row[j0..j1].iter_mut()) {
                            *out_val = simd::dot(a_row, other.row(j), simd);
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    /// [`Matrix::matmul_transpose_left`] under an explicit
    /// [`ParallelPolicy`]: the `n_cols(self) x n_cols(other)` output is
    /// partitioned by output rows; every thread scans the shared operand
    /// rows in the serial order, so each output element accumulates in the
    /// serial order and the result is bitwise identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows() != other.rows()`.
    pub fn matmul_transpose_left_with(
        &self,
        other: &Matrix,
        policy: &ParallelPolicy,
    ) -> Result<Matrix> {
        if self.rows() != other.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transpose_left",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (k, n, m) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(n, m);
        if n == 0 || m == 0 {
            return Ok(out);
        }
        let simd = policy.simd;
        let row_cost = k.saturating_mul(m);
        for_each_row_block(
            out.as_mut_slice(),
            n,
            m,
            row_cost,
            policy,
            &|range, block| {
                // p-outer order keeps `other`'s rows streaming through cache;
                // each thread touches only its own band of output rows. The
                // per-element accumulation order (ascending p) matches serial
                // exactly, and the inner axpy is element-wise so the SIMD layer
                // preserves it. No zero-skip (IEEE NaN propagation, see
                // `matmul_with`).
                for p in 0..k {
                    let a_row = self.row(p);
                    let b_row = other.row(p);
                    for (local, i) in range.clone().enumerate() {
                        let a_pi = a_row[i];
                        let out_row = &mut block[local * m..(local + 1) * m];
                        simd::axpy(a_pi, b_row, out_row, simd);
                    }
                }
            },
        );
        Ok(out)
    }

    /// Row-wise map: builds an `rows x out_cols` matrix where row `i` is
    /// produced by `f(i, self.row(i), out_row)`, with rows partitioned
    /// across threads. Rows are independent, so the result is identical for
    /// every thread count. This is the workhorse behind the fused
    /// bias-broadcast + activation passes in the RBM hot paths (an
    /// element-wise map is the `out_cols == self.cols()` special case).
    pub fn map_rows_with(
        &self,
        out_cols: usize,
        policy: &ParallelPolicy,
        f: impl Fn(usize, &[f64], &mut [f64]) + Sync,
    ) -> Matrix {
        let n = self.rows();
        let mut out = Matrix::zeros(n, out_cols);
        if n == 0 || out_cols == 0 {
            return out;
        }
        // The closure's cost is opaque; reading the input row and writing the
        // output row is the floor, so use that as the hint.
        let row_cost = self.cols().saturating_add(out_cols);
        for_each_row_block(
            out.as_mut_slice(),
            n,
            out_cols,
            row_cost,
            policy,
            &|range, block| {
                for (i, out_row) in range.zip(block.chunks_mut(out_cols)) {
                    f(i, self.row(i), out_row);
                }
            },
        );
        out
    }

    /// Row-wise reduction: one `f(i, row)` value per row, computed with rows
    /// partitioned across threads. Identical for every thread count.
    pub fn reduce_rows_with(
        &self,
        policy: &ParallelPolicy,
        f: impl Fn(usize, &[f64]) -> f64 + Sync,
    ) -> Vec<f64> {
        let n = self.rows();
        let mut out = vec![0.0; n];
        if n == 0 {
            return out;
        }
        for_each_row_block(&mut out, n, 1, self.cols(), policy, &|range, block| {
            for (i, slot) in range.zip(block.iter_mut()) {
                *slot = f(i, self.row(i));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixRandomExt;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(77)
    }

    fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    fn eager(threads: usize) -> ParallelPolicy {
        ParallelPolicy::new(threads).with_min_rows_per_thread(1)
    }

    #[test]
    fn policy_defaults_and_builders() {
        let p = ParallelPolicy::default();
        assert!(p.is_serial());
        assert_eq!(p.threads, 1);
        assert!(!p.pool, "pooled dispatch must be opt-in");
        assert_eq!(p.simd, SimdPolicy::Lanes4, "SIMD must be on by default");
        let q = ParallelPolicy::new(8)
            .with_min_rows_per_thread(16)
            .with_pool(true)
            .with_simd(SimdPolicy::Scalar);
        assert_eq!(q.threads, 8);
        assert_eq!(q.min_rows_per_thread, 16);
        assert!(q.pool);
        assert_eq!(q.simd, SimdPolicy::Scalar);
        assert!(!q.is_serial());
        // 0 resolves to the core count, which is at least 1.
        assert!(ParallelPolicy::auto().threads >= 1);
        // min_rows_per_thread never drops below 1.
        assert_eq!(
            ParallelPolicy::serial()
                .with_min_rows_per_thread(0)
                .min_rows_per_thread,
            1
        );
    }

    #[test]
    fn policy_serde_round_trips_and_reads_pre_pool_documents() {
        let p = ParallelPolicy::new(3)
            .with_min_rows_per_thread(7)
            .with_pool(true)
            .with_simd(SimdPolicy::Scalar);
        let json = serde_json::to_string(&p).unwrap();
        let back: ParallelPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // Policy JSON written before the `pool` / `simd` fields existed
        // still loads: no pool (the old behaviour), SIMD on (the default —
        // safe because the SIMD layer never changes an output bit).
        let legacy = "{\"threads\": 5, \"min_rows_per_thread\": 2}";
        let back: ParallelPolicy = serde_json::from_str(legacy).unwrap();
        assert_eq!(
            back,
            ParallelPolicy::new(5)
                .with_min_rows_per_thread(2)
                .with_pool(false)
        );
        assert_eq!(back.simd, SimdPolicy::Lanes4);
    }

    #[test]
    fn pool_flag_bool_spellings() {
        for raw in ["1", "true", "TRUE", " True "] {
            assert_eq!(ParallelPolicy::parse_bool(raw), Some(true), "{raw}");
        }
        for raw in ["0", "false", "FALSE", " False "] {
            assert_eq!(ParallelPolicy::parse_bool(raw), Some(false), "{raw}");
        }
        assert_eq!(ParallelPolicy::parse_bool("yes"), None);
        assert_eq!(ParallelPolicy::parse_bool(""), None);
    }

    #[test]
    fn effective_threads_respects_budget_and_cutover() {
        let p = ParallelPolicy::new(4).with_min_rows_per_thread(64);
        assert_eq!(p.effective_threads(0), 1);
        assert_eq!(p.effective_threads(63), 1); // below cutover: serial
        assert_eq!(p.effective_threads(128), 2); // 2 threads x 64 rows
        assert_eq!(p.effective_threads(100_000), 4); // capped by budget
        assert_eq!(ParallelPolicy::serial().effective_threads(100_000), 1);
    }

    #[test]
    fn parallel_matmul_matches_serial_bitwise() {
        let mut r = rng();
        let a = Matrix::random_normal(37, 19, 0.0, 1.0, &mut r);
        let b = Matrix::random_normal(19, 23, 0.0, 1.0, &mut r);
        let serial = a.matmul_with(&b, &ParallelPolicy::serial()).unwrap();
        for threads in [2, 3, 8] {
            let par = a.matmul_with(&b, &eager(threads)).unwrap();
            assert!(bitwise_eq(&serial, &par), "threads = {threads}");
        }
        assert!(bitwise_eq(&serial, &a.matmul(&b).unwrap()));
    }

    #[test]
    fn parallel_transpose_products_match_serial_bitwise() {
        let mut r = rng();
        let a = Matrix::random_normal(41, 17, 0.0, 1.0, &mut r);
        let b = Matrix::random_normal(29, 17, 0.0, 1.0, &mut r);
        let serial_tr = a
            .matmul_transpose_right_with(&b, &ParallelPolicy::serial())
            .unwrap();
        let h = Matrix::random_normal(41, 11, 0.0, 1.0, &mut r);
        let serial_tl = a
            .matmul_transpose_left_with(&h, &ParallelPolicy::serial())
            .unwrap();
        for threads in [2, 5, 8] {
            let par_tr = a.matmul_transpose_right_with(&b, &eager(threads)).unwrap();
            assert!(bitwise_eq(&serial_tr, &par_tr), "tr threads = {threads}");
            let par_tl = a.matmul_transpose_left_with(&h, &eager(threads)).unwrap();
            assert!(bitwise_eq(&serial_tl, &par_tl), "tl threads = {threads}");
        }
    }

    #[test]
    fn parallel_kernels_validate_shapes() {
        let a = Matrix::zeros(3, 4);
        let p = eager(4);
        assert!(a.matmul_with(&Matrix::zeros(3, 3), &p).is_err());
        assert!(a
            .matmul_transpose_right_with(&Matrix::zeros(2, 3), &p)
            .is_err());
        assert!(a
            .matmul_transpose_left_with(&Matrix::zeros(2, 2), &p)
            .is_err());
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let p = eager(8);
        let empty = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(empty.matmul_with(&b, &p).unwrap().shape(), (0, 3));
        let no_cols = Matrix::zeros(4, 5)
            .matmul_with(&Matrix::zeros(5, 0), &p)
            .unwrap();
        assert_eq!(no_cols.shape(), (4, 0));
        assert_eq!(
            empty.map_rows_with(5, &p, |_, _, _| unreachable!()).shape(),
            (0, 5)
        );
        assert_eq!(empty.reduce_rows_with(&p, |_, r| r.len() as f64), vec![]);
    }

    #[test]
    fn map_rows_with_matches_elementwise_map() {
        let mut r = rng();
        let m = Matrix::random_normal(33, 7, 0.0, 2.0, &mut r);
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let serial = m.map(sigmoid);
        let par = m.map_rows_with(7, &eager(4), |_, row, out| {
            for (o, &x) in out.iter_mut().zip(row) {
                *o = sigmoid(x);
            }
        });
        assert!(bitwise_eq(&serial, &par));
    }

    #[test]
    fn map_rows_and_reduce_rows_partition_correctly() {
        let mut r = rng();
        let m = Matrix::random_normal(25, 6, 0.0, 1.0, &mut r);
        let doubled = m.map_rows_with(6, &eager(3), |_, row, out| {
            for (o, &x) in out.iter_mut().zip(row) {
                *o = 2.0 * x;
            }
        });
        assert!(bitwise_eq(&doubled, &m.scale(2.0)));
        // Row index is passed through correctly.
        let idx = m.reduce_rows_with(&eager(5), |i, _| i as f64);
        assert_eq!(idx, (0..25).map(|i| i as f64).collect::<Vec<_>>());
        let sums = m.reduce_rows_with(&eager(5), |_, row| row.iter().sum());
        let serial_sums = m.reduce_rows_with(&ParallelPolicy::serial(), |_, row| row.iter().sum());
        assert_eq!(sums, serial_sums);
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let mut r = rng();
        let a = Matrix::random_normal(3, 4, 0.0, 1.0, &mut r);
        let b = Matrix::random_normal(4, 2, 0.0, 1.0, &mut r);
        let serial = a.matmul_with(&b, &ParallelPolicy::serial()).unwrap();
        let par = a.matmul_with(&b, &eager(16)).unwrap();
        assert!(bitwise_eq(&serial, &par));
        let pooled = a.matmul_with(&b, &eager(16).with_pool(true)).unwrap();
        assert!(bitwise_eq(&serial, &pooled));
    }

    #[test]
    fn pooled_kernels_match_serial_bitwise_for_all_five_kernels() {
        let mut r = rng();
        let a = Matrix::random_normal(43, 18, 0.0, 1.0, &mut r);
        let w = Matrix::random_normal(18, 9, 0.0, 1.0, &mut r);
        let h = Matrix::random_normal(43, 9, 0.0, 1.0, &mut r);
        let serial = ParallelPolicy::serial();
        for threads in [2, 4, 8] {
            let pooled = eager(threads).with_pool(true);
            assert!(bitwise_eq(
                &a.matmul_with(&w, &serial).unwrap(),
                &a.matmul_with(&w, &pooled).unwrap(),
            ));
            assert!(bitwise_eq(
                &a.matmul_transpose_right_with(&a, &serial).unwrap(),
                &a.matmul_transpose_right_with(&a, &pooled).unwrap(),
            ));
            assert!(bitwise_eq(
                &a.matmul_transpose_left_with(&h, &serial).unwrap(),
                &a.matmul_transpose_left_with(&h, &pooled).unwrap(),
            ));
            let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
            let fused = |_: usize, row: &[f64], out: &mut [f64]| {
                for (o, &x) in out.iter_mut().zip(row) {
                    *o = sigmoid(x);
                }
            };
            assert!(bitwise_eq(
                &a.map_rows_with(18, &serial, fused),
                &a.map_rows_with(18, &pooled, fused),
            ));
            let norm = |_: usize, row: &[f64]| row.iter().map(|x| x * x).sum::<f64>();
            let s = a.reduce_rows_with(&serial, norm);
            let p = a.reduce_rows_with(&pooled, norm);
            assert!(s.iter().zip(&p).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn transpose_right_is_bitwise_identical_for_every_tile_size() {
        // The tile only reorders which output elements are computed when;
        // each element is still one full canonical-order dot, so any tile —
        // including "no tiling" (tile >= m) — must reproduce the default
        // result bit for bit, under both SIMD arms.
        let mut r = rng();
        let a = Matrix::random_normal(37, 21, 0.0, 1.0, &mut r);
        let b = Matrix::random_normal(29, 21, 0.0, 1.0, &mut r);
        let policy = eager(4);
        let reference = a.matmul_transpose_right_with(&b, &policy).unwrap();
        for tile in [1, 3, 8, 28, 29, usize::MAX] {
            for simd in [SimdPolicy::Lanes4, SimdPolicy::Scalar] {
                let tiled = a
                    .matmul_transpose_right_tiled_with(&b, &policy.with_simd(simd), tile)
                    .unwrap();
                assert!(bitwise_eq(&reference, &tiled), "tile {tile} simd {simd:?}");
            }
        }
    }

    #[test]
    fn default_tile_tracks_operand_width() {
        // ~32 KiB working set: narrow operands get deep tiles, wide ones
        // shallow, clamped to [8, 512].
        assert_eq!(Matrix::transpose_right_tile_rows(256), 16);
        assert_eq!(Matrix::transpose_right_tile_rows(64), 64);
        assert_eq!(Matrix::transpose_right_tile_rows(1), 512); // clamp high
        assert_eq!(Matrix::transpose_right_tile_rows(0), 512); // no div-by-0
        assert_eq!(Matrix::transpose_right_tile_rows(100_000), 8); // clamp low
    }

    #[test]
    fn simd_arms_are_bitwise_identical_across_dispatch_modes() {
        let mut r = rng();
        let a = Matrix::random_normal(43, 19, 0.0, 1.0, &mut r);
        let w = Matrix::random_normal(19, 9, 0.0, 1.0, &mut r);
        let reference = a
            .matmul_with(&w, &ParallelPolicy::serial().with_simd(SimdPolicy::Scalar))
            .unwrap();
        for pool in [false, true] {
            for simd in [SimdPolicy::Scalar, SimdPolicy::Lanes4] {
                let policy = eager(4).with_pool(pool).with_simd(simd);
                let out = a.matmul_with(&w, &policy).unwrap();
                assert!(bitwise_eq(&reference, &out), "pool {pool} simd {simd:?}");
            }
        }
    }

    #[test]
    fn nested_pooled_kernel_runs_inline_without_deadlock() {
        // A pooled kernel whose row closure itself invokes a pooled kernel
        // must not wait on the pool from a pool worker; the nested call runs
        // inline. If the fallback regressed, this test would hang rather
        // than fail — it is the liveness guard for nested dispatch.
        let mut r = rng();
        let m = Matrix::random_normal(24, 6, 0.0, 1.0, &mut r);
        let w = Matrix::random_normal(6, 3, 0.0, 1.0, &mut r);
        let pooled = eager(4).with_pool(true);
        let out = m.map_rows_with(3, &pooled, |i, _, out_row| {
            // Nested pooled product over the shared operands.
            let inner = m.matmul_with(&w, &pooled).unwrap();
            out_row.copy_from_slice(inner.row(i));
        });
        assert!(bitwise_eq(
            &out,
            &m.matmul_with(&w, &ParallelPolicy::serial()).unwrap()
        ));
    }

    #[test]
    fn global_policy_round_trips() {
        // Safe to exercise concurrently with other tests: the global policy
        // only chooses a thread count, never a numeric result.
        let before = ParallelPolicy::global();
        ParallelPolicy::set_global(ParallelPolicy::new(3).with_min_rows_per_thread(7));
        let p = ParallelPolicy::global();
        assert_eq!(p.threads, 3);
        assert_eq!(p.min_rows_per_thread, 7);
        ParallelPolicy::set_global(before);
        assert_eq!(ParallelPolicy::global(), before);
    }
}
