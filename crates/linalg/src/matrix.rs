//! Row-major dense matrix type.

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// Rows are the unit of work throughout the workspace: one row is one data
/// instance (a visible-layer vector, a hidden-feature vector, a reconstructed
/// sample, ...). Row access therefore returns contiguous slices.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DataShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DataShapeMismatch {
                rows,
                cols,
                data_len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows do not all share the
    /// same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows {
                    expected: cols,
                    row: i,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Checked row access.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if the index is invalid.
    pub fn try_row(&self, i: usize) -> Result<&[f64]> {
        if i >= self.rows {
            return Err(LinalgError::IndexOutOfBounds {
                axis: "row",
                index: i,
                len: self.rows,
            });
        }
        Ok(self.row(i))
    }

    /// Copies column `j` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix containing the selected rows, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if any index is invalid.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(LinalgError::IndexOutOfBounds {
                    axis: "row",
                    index: i,
                    len: self.rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Returns the sub-matrix of rows `start..end` (half-open).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if `end > rows` or
    /// `start > end`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Self> {
        if end > self.rows || start > end {
            return Err(LinalgError::IndexOutOfBounds {
                axis: "row",
                index: end,
                len: self.rows,
            });
        }
        Ok(Self {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Self) -> Result<Self> {
        if self.cols != other.cols && !self.is_empty() && !other.is_empty() {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let cols = if self.is_empty() {
            other.cols
        } else {
            self.cols
        };
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Self {
            rows: self.rows + other.rows,
            cols,
            data,
        })
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element; `None` for an empty matrix.
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.max(x)),
        })
    }

    /// Minimum element; `None` for an empty matrix.
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.min(x)),
        })
    }

    /// Frobenius norm (`sqrt` of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `true` if every element is finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Element-wise approximate equality with absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 6;
        for (i, row) in self.row_iter().enumerate().take(max_rows) {
            let cells: Vec<String> = row.iter().take(8).map(|x| format!("{x:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
            if i + 1 == max_rows && self.rows > max_rows {
                writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_vec_checks_shape() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0]).unwrap_err();
        assert!(matches!(err, LinalgError::DataShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_rows_empty_is_empty_matrix() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
        assert!(m.is_empty());
    }

    #[test]
    fn zeros_filled_identity() {
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::filled(2, 3, 2.5).sum(), 15.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_fn_builds_expected_values() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn row_and_column_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
        assert_eq!(m[(0, 1)], 2.0);
    }

    #[test]
    fn try_row_out_of_bounds() {
        let m = sample();
        assert!(m.try_row(1).is_ok());
        assert!(matches!(
            m.try_row(5),
            Err(LinalgError::IndexOutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "row index")]
    fn row_panics_out_of_bounds() {
        sample().row(7);
    }

    #[test]
    fn row_mut_modifies() {
        let mut m = sample();
        m.row_mut(0)[0] = 42.0;
        assert_eq!(m[(0, 0)], 42.0);
    }

    #[test]
    fn select_rows_picks_and_duplicates() {
        let m = sample();
        let s = m.select_rows(&[1, 1, 0]).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(s.row(2), &[1.0, 2.0, 3.0]);
        assert!(m.select_rows(&[9]).is_err());
    }

    #[test]
    fn slice_rows_half_open() {
        let m = sample();
        let s = m.slice_rows(1, 2).unwrap();
        assert_eq!(s.rows(), 1);
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        assert!(m.slice_rows(0, 3).is_err());
        assert!(m.slice_rows(2, 1).is_err());
    }

    #[test]
    fn vstack_concatenates_rows() {
        let m = sample();
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.row(2), m.row(0));
        let bad = Matrix::zeros(1, 2);
        assert!(m.vstack(&bad).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn map_and_map_inplace() {
        let m = sample();
        let doubled = m.map(|x| x * 2.0);
        assert_eq!(doubled[(1, 2)], 12.0);
        let mut m2 = sample();
        m2.map_inplace(|x| x + 1.0);
        assert_eq!(m2[(0, 0)], 2.0);
    }

    #[test]
    fn aggregates() {
        let m = sample();
        assert_eq!(m.sum(), 21.0);
        assert!((m.mean() - 3.5).abs() < 1e-12);
        assert_eq!(m.max(), Some(6.0));
        assert_eq!(m.min(), Some(1.0));
        let empty = Matrix::zeros(0, 0);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn finiteness_check() {
        let mut m = sample();
        assert!(m.is_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let m = sample();
        let mut n = sample();
        n[(0, 0)] += 1e-9;
        assert!(m.approx_eq(&n, 1e-6));
        assert!(!m.approx_eq(&n, 1e-12));
        assert!(!m.approx_eq(&Matrix::zeros(2, 2), 1.0));
    }

    #[test]
    fn row_iter_yields_all_rows() {
        let m = sample();
        let rows: Vec<&[f64]> = m.row_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m);
        // serde_json is not a dependency of this crate; round-trip through the
        // serde data model using a manual check instead when unavailable.
        if let Ok(json) = json {
            let back: Matrix = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn debug_format_is_compact() {
        let m = Matrix::zeros(10, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 10x20"));
        assert!(s.contains("more rows"));
    }
}
