//! A persistent work-stealing worker pool for the parallel kernels.
//!
//! The scoped-thread dispatch in [`crate::ParallelPolicy`]'s kernels spawns
//! OS threads on every call (~10–50 µs each), which erases the multi-core
//! win exactly where it matters most: small serving micro-batches, where the
//! kernel itself runs for comparable time. [`WorkerPool`] removes that cost
//! by parking N long-lived workers on per-worker deques
//! ([`std::sync::Mutex`] + [`std::sync::Condvar`], no new dependencies) and
//! handing them row-chunk tasks through [`WorkerPool::scope`].
//!
//! ## Work-stealing scheduling
//!
//! Submitted tasks are distributed round-robin across **per-worker deques**.
//! A worker pops its own deque from the front; when it runs dry it *steals
//! half* of another worker's deque from the back, so an unlucky initial
//! distribution — or a deque stuck behind one long-running chunk — rebalances
//! itself instead of leaving workers idle behind a straggler. The kernels
//! exploit this by splitting each call into more chunks than threads
//! (see `for_each_row_block` in [`crate::ParallelPolicy`]'s module): equal
//! *row counts* are not equal *costs* once sparsity is ragged or scopes of
//! very different sizes share the pool, and stealing is what keeps every
//! core busy until the last chunk retires. Chunks only reorder *when* a row
//! is computed, never the accumulation order inside a row, so stolen-chunk
//! output stays bitwise identical to serial.
//!
//! A task may be queued in two places at once (a worker deque and its
//! scope's help list, below); execution is made exactly-once by a claim
//! step — the task's closure is `take()`-n under a lock, and whoever gets
//! `Some` runs it. A popped entry whose closure is already gone is stale
//! and simply discarded.
//!
//! ## Borrowed-closure dispatch
//!
//! [`std::thread::scope`] lets spawned closures borrow from the caller's
//! stack because the compiler proves every thread is joined before the scope
//! returns. A long-lived pool cannot get that proof from the compiler, so
//! [`WorkerPool::scope`] reconstructs the same guarantee by hand: every task
//! spawned through a [`PoolScope`] is counted on a completion latch, and
//! `scope` does not return — not even by unwinding — until the latch has
//! seen every task finish. Only then can the borrows the tasks captured go
//! out of scope, which is what makes the internal lifetime erasure sound.
//!
//! ## Panic propagation
//!
//! A panicking task never takes a worker down: the panic payload is caught
//! on the worker, carried back through the latch, and re-raised on the
//! submitting thread once all of the scope's tasks have finished — the same
//! observable behaviour as [`std::thread::scope`]. The pool stays fully
//! usable afterwards (it does not poison).
//!
//! ## Deadlock safety and help scheduling
//!
//! A thread waiting on a scope does not merely sleep: it *helps*, draining
//! its own scope's queued tasks until the scope completes. A nested `scope`
//! on a pool worker — or a pooled kernel reached through an intermediate
//! spawn-path scoped thread — therefore executes its tasks itself rather
//! than waiting for a worker that is blocked further up the same call
//! stack, so no nesting shape can deadlock the pool. Helping is bounded to
//! the waiting scope's *own* tasks: each scope's latch keeps its own list of
//! still-queued tasks, so the help loop pops from that list in O(1) per task
//! — it never scans (or even locks) the pool's shared queues, and a small
//! serving scope can never get stuck executing an unrelated scope's
//! long-running chunk (say, a large training job) before it can observe its
//! own completion. Once its own list is empty, the stragglers are already
//! running on other threads and the waiter sleeps on the scope's latch.
//!
//! Every pool task — whether picked up by a worker, stolen, or executed by a
//! helping waiter — runs with a thread-local flag set
//! ([`WorkerPool::on_worker_thread`]) that lets the kernels skip the queue
//! entirely for nested dispatch and run inline — bitwise identical, and
//! cheaper than help-routing.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A queued unit of work. The closure is claimed (`take`-n) by exactly one
/// executor; the same `Arc<Task>` may sit in a worker deque *and* in its
/// scope's help list, and whichever pops it second finds the closure gone
/// and discards the stale entry.
struct Task {
    /// The scope this task belongs to — executing threads decrement its
    /// latch; the help path drains the latch's own-task list.
    latch: Arc<Latch>,
    /// The actual work, present until claimed.
    run: Mutex<Option<Box<dyn FnOnce() + Send + 'static>>>,
}

thread_local! {
    /// `true` on threads owned by any [`WorkerPool`], and on any thread for
    /// the duration of a pool task it executes on the help path.
    static ON_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Locks a mutex, recovering from poisoning: the pool's shared state is a
/// plain set of task queues whose invariants hold between every two
/// statements, and user panics are caught before they can unwind through a
/// held guard, so a poisoned lock only ever means "some unrelated thread
/// panicked" — refusing to continue would turn one propagated panic into a
/// deadlocked pool.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Claims and executes `task` if its closure has not been claimed yet.
/// Returns `false` for a stale entry (already claimed elsewhere).
///
/// The closure runs with the pool flag raised (restoring the caller's flag
/// state afterwards — kernels consult the flag to run nested dispatch
/// inline, and that must hold on the help path exactly as it does on a
/// worker thread), with its panic caught and recorded on the scope's latch.
fn run_task(task: &Task) -> bool {
    let Some(run) = lock(&task.run).take() else {
        return false;
    };
    let was = ON_POOL_WORKER.with(|flag| flag.replace(true));
    let panic = catch_unwind(AssertUnwindSafe(run)).err();
    ON_POOL_WORKER.with(|flag| flag.set(was));
    task.latch.finish_task(panic);
    true
}

/// One worker's deque. The owner pops from the front; thieves take half
/// from the back, so the owner keeps the cache-warm oldest chunks while a
/// straggling backlog migrates wholesale to an idle worker.
struct WorkerQueue {
    deque: Mutex<VecDeque<Arc<Task>>>,
}

/// State shared by all workers of one pool.
struct Shared {
    /// One deque per worker thread.
    workers: Vec<WorkerQueue>,
    /// Sleep/shutdown coordination (see [`worker_loop`] for the protocol).
    state: Mutex<PoolState>,
    /// Signalled when a task is pushed or shutdown begins.
    work_ready: Condvar,
    /// Round-robin cursor for task injection.
    next_worker: AtomicUsize,
}

struct PoolState {
    /// Total tasks ever pushed — the monotonic counter workers use to
    /// detect "something arrived between my empty scan and my sleep".
    pushes: u64,
    shutdown: bool,
}

impl Shared {
    /// Pushes a task onto the next deque in round-robin order and wakes one
    /// sleeping worker. The push lands in the deque *before* the counter
    /// increment, which is what makes the workers' scan-then-recheck sleep
    /// protocol lossless.
    fn push(&self, task: Arc<Task>) {
        let at = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        lock(&self.workers[at].deque).push_back(task);
        lock(&self.state).pushes += 1;
        self.work_ready.notify_one();
    }

    /// Pops the calling worker's own deque, or steals half of the first
    /// non-empty victim deque (from the back). Returns `None` only when
    /// every deque was observed empty.
    fn next_task(&self, me: usize) -> Option<Arc<Task>> {
        if let Some(task) = lock(&self.workers[me].deque).pop_front() {
            return Some(task);
        }
        let n = self.workers.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            let stolen = {
                let mut victim_queue = lock(&self.workers[victim].deque);
                let keep = victim_queue.len() / 2;
                if victim_queue.len() == keep {
                    continue; // empty: len 0, keep 0
                }
                victim_queue.split_off(keep)
            };
            let mut stolen = stolen.into_iter();
            let first = stolen.next();
            let mut mine = lock(&self.workers[me].deque);
            mine.extend(stolen);
            let surplus = !mine.is_empty();
            drop(mine);
            // While the batch was in flight between the two deques, another
            // worker's scan could have seen every deque empty and gone to
            // sleep with work still outstanding. If the steal moved more
            // than the one task we run ourselves, bump the counter (the
            // surplus is already visible in our deque, preserving the
            // deque-before-counter ordering) and wake a sleeper so it
            // re-scans and can sub-steal instead of idling behind us.
            if surplus {
                lock(&self.state).pushes += 1;
                self.work_ready.notify_one();
            }
            return first;
        }
        None
    }
}

/// Completion latch of one [`PoolScope`]: how many spawned tasks are still
/// running, the first panic payload any of them raised, and the scope's own
/// still-queued tasks (the help list).
struct Latch {
    state: Mutex<LatchState>,
    all_done: Condvar,
    /// This scope's still-queued tasks, in spawn order. The help path pops
    /// from here — O(1) per task, no shared-pool lock — so helping can never
    /// execute another scope's work nor serialize unrelated submitters.
    own: Mutex<VecDeque<Arc<Task>>>,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new() -> Self {
        Self {
            state: Mutex::new(LatchState {
                pending: 0,
                panic: None,
            }),
            all_done: Condvar::new(),
            own: Mutex::new(VecDeque::new()),
        }
    }

    /// Registers one more in-flight task.
    fn add_task(&self) {
        lock(&self.state).pending += 1;
    }

    /// Marks one task finished, recording its panic payload if it is the
    /// scope's first.
    fn finish_task(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = lock(&self.state);
        state.pending -= 1;
        let leftover = if state.panic.is_none() {
            state.panic = panic;
            None
        } else {
            panic
        };
        if state.pending == 0 {
            self.all_done.notify_all();
        }
        drop(state);
        // A second (or later) panic payload is dropped here, outside the
        // lock and inside a catch: one exotic escape is a payload whose
        // *own destructor* panics when dropped, and even that must not kill
        // a worker thread or double-panic a helping caller's unwind.
        if let Some(payload) = leftover {
            let _ = catch_unwind(AssertUnwindSafe(move || drop(payload)));
        }
    }

    /// Takes the first recorded panic payload, if any task panicked.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.state).panic.take()
    }
}

/// A fixed-size pool of persistent worker threads executing borrowed
/// closures submitted through [`WorkerPool::scope`], scheduled by
/// work-stealing across per-worker deques.
///
/// Dropping the pool shuts it down cleanly: the workers finish every task
/// already queued (there can be none unless a scope is still waiting on
/// them), then exit and are joined.
///
/// ```
/// use sls_linalg::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let data = vec![1.0f64, 2.0, 3.0, 4.0];
/// let (left, right) = data.split_at(2);
/// let mut sums = [0.0f64; 2];
/// let (s0, s1) = sums.split_at_mut(1);
/// pool.scope(|scope| {
///     scope.spawn(|| s0[0] = left.iter().sum());
///     scope.spawn(|| s1[0] = right.iter().sum());
/// });
/// assert_eq!(sums, [3.0, 7.0]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Starts a pool with `workers` persistent threads (clamped to at
    /// least 1 — a pool with no workers could never run a queued task).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            workers: (0..workers)
                .map(|_| WorkerQueue {
                    deque: Mutex::new(VecDeque::new()),
                })
                .collect(),
            state: Mutex::new(PoolState {
                pushes: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            next_worker: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sls-pool-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// `true` when called from a thread owned by any [`WorkerPool`], or
    /// while the calling thread is executing a pool task on the help path
    /// (a scope waiter draining its own tasks — see [`WorkerPool::scope`]).
    ///
    /// Kernels use this to short-circuit nested dispatch: a task already
    /// executing on behalf of the pool runs nested row chunks inline instead
    /// of round-tripping them through the queues — and that holds for *any*
    /// nested policy, pooled or spawn-path, because spawning fresh scoped
    /// threads from inside a pool task would oversubscribe the machine just
    /// the same. This is an optimisation, not the liveness guarantee —
    /// waiting scopes help drain their own tasks, so even un-flagged nesting
    /// cannot deadlock.
    pub fn on_worker_thread() -> bool {
        ON_POOL_WORKER.with(Cell::get)
    }

    /// The process-global pool used by the kernels when a
    /// [`crate::ParallelPolicy`] has its `pool` flag set.
    ///
    /// Lazily started on first use with one worker per available core minus
    /// one (at least one) — the submitting thread always executes one row
    /// chunk itself, so workers + submitter together saturate the machine.
    /// The pool lives for the rest of the process; it is an execution
    /// resource, never part of any serialized artifact.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            WorkerPool::new(cores.saturating_sub(1).max(1))
        })
    }

    /// Runs `f` with a [`PoolScope`] through which it can spawn tasks that
    /// borrow from the enclosing stack frame, then blocks until every
    /// spawned task has finished.
    ///
    /// The calling thread is expected to do a share of the work itself
    /// inside `f` (the kernels run their first row chunk inline) — `scope`
    /// only sleeps once `f` returns, its own queued tasks are drained, and
    /// tasks are still in flight on other threads.
    ///
    /// # Panics
    ///
    /// If a spawned task panics, the first panic payload is re-raised here
    /// after all tasks of the scope have finished, mirroring
    /// [`std::thread::scope`]. If `f` itself panics, its panic propagates —
    /// also only after every already-spawned task has finished, so borrowed
    /// data is never freed under a running task.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let latch = Arc::new(Latch::new());
        let scope = PoolScope {
            pool: self,
            latch: Arc::clone(&latch),
            _env: PhantomData,
        };

        /// Waits for the scope's tasks on *every* exit path, including the
        /// caller's closure unwinding: the lifetime-erasure safety argument
        /// requires that no task can outlive this stack frame.
        struct WaitGuard<'a> {
            latch: &'a Latch,
        }
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                help_until_done(self.latch);
            }
        }

        let result = {
            let _guard = WaitGuard { latch: &latch };
            f(&scope)
        };
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        result
    }
}

/// Blocks until `latch` has counted every task of one scope as finished,
/// executing that scope's still-queued tasks while waiting.
///
/// The helping is what makes `scope` deadlock-free under *any* nesting: a
/// scope waited on from a pool worker (re-entrant `scope`), or from a
/// thread a pool worker is itself blocked on (a pooled kernel reached
/// through an intermediate spawn-path scoped thread), drains its own tasks
/// instead of waiting for a worker that will never come.
///
/// Help is bounded to the waiting scope's own tasks on purpose: executing
/// arbitrary queued work would let a thread waiting on a small serving
/// scope get stuck under an unrelated scope's long-running chunk (unbounded
/// added tail latency for pooled micro-batch requests under mixed
/// training+serving load). The bound is structural, not a filter: the help
/// list lives on the scope's own latch, so each pop is O(1) and touches no
/// shared pool state — with many scopes in flight, helpers cannot serialize
/// each other the way the old scan-the-global-injector help path did.
/// Liveness does not need cross-scope help — unrelated queued tasks are
/// drained by the workers and by their *own* waiting submitters.
///
/// Once the scope's own list is empty, every remaining task is either
/// already running on some other thread or claimed-and-stale, so a plain
/// condvar wait cannot strand work. That rests on an invariant the borrow
/// checker enforces: spawning onto a scope ends when its closure returns,
/// because [`PoolScope::spawn`] bounds tasks by `'env` (stricter than
/// [`std::thread::scope`]'s `'scope`), so a task can never capture the
/// scope handle and spawn siblings later — the attempt is a compile error
/// (`E0521`, borrowed data escapes the closure).
fn help_until_done(latch: &Latch) {
    loop {
        if lock(&latch.state).pending == 0 {
            break;
        }
        let task = lock(&latch.own).pop_front();
        match task {
            // A stale entry (claimed by a worker or thief) just pops off;
            // the next iteration re-checks pending.
            Some(task) => {
                run_task(&task);
            }
            None => {
                let mut state = lock(&latch.state);
                while state.pending > 0 {
                    state = latch
                        .all_done
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                break;
            }
        }
    }
    // The scope is complete, but entries claimed by workers before this
    // thread could pop them may still sit in `own` — and each holds an
    // `Arc<Task>` whose task holds an `Arc` back to this latch. Left alone,
    // that strong cycle would leak the latch, the task shells, and the
    // deque on every scope whose workers out-raced the helping submitter
    // (the common fast path). Nothing can be added to `own` once the scope
    // closure has returned, so draining it here severs the cycle.
    lock(&latch.own).clear();
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Scope handle passed to the closure of [`WorkerPool::scope`].
///
/// `'env` is the lifetime of borrows captured by spawned tasks; it is
/// invariant (as in [`std::thread::Scope`]) so the compiler cannot shrink it
/// to something that dies before `scope` returns.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    latch: Arc<Latch>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope")
            .field("pool", self.pool)
            .finish()
    }
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `task` on the pool. It may borrow anything that outlives the
    /// enclosing [`WorkerPool::scope`] call.
    ///
    /// Unlike [`std::thread::Scope::spawn`], the task is bounded by `'env`
    /// rather than a `'scope` lifetime, so a task **cannot capture the
    /// scope handle** and spawn siblings from inside the pool — such code
    /// fails to compile. This is deliberate: the scope's wait logic relies
    /// on no task being spawned after the scope closure returns (open a
    /// nested [`WorkerPool::scope`] from within a task instead; that is
    /// fully supported).
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.latch.add_task();
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the closure only has to live for the duration of the
        // enclosing `WorkerPool::scope` call, because `scope` blocks (on the
        // latch this task was just registered with) until the task has
        // finished — on the normal path and, via `WaitGuard`, when
        // unwinding. An unclaimed closure keeps the latch pending, so the
        // wait also covers every entry still sitting in a deque. Erasing the
        // lifetime to `'static` therefore never lets the task observe a dead
        // borrow; the transmute only changes the trait object's lifetime
        // bound, not its layout.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        let task = Arc::new(Task {
            latch: Arc::clone(&self.latch),
            run: Mutex::new(Some(task)),
        });
        lock(&self.latch.own).push_back(Arc::clone(&task));
        self.pool.shared.push(task);
    }
}

/// The worker main loop: drain own deque from the front, steal half from a
/// victim's back when dry, and sleep only after an empty scan that no
/// concurrent push raced with.
///
/// The sleep protocol is scan-then-recheck against the shared `pushes`
/// counter: a push lands in a deque *before* incrementing the counter, so
/// if the counter is unchanged between the pre-scan read and the
/// under-lock recheck, every task pushed before the recheck was already
/// visible to the scan — an empty scan plus an unchanged counter means
/// there is genuinely nothing to do, and the condvar wait cannot lose a
/// wakeup (the notify happens after the increment, under no lock, but the
/// recheck holds the state lock the incrementer also takes).
fn worker_loop(shared: &Shared, me: usize) {
    ON_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let seen = lock(&shared.state).pushes;
        let mut ran_any = false;
        while let Some(task) = shared.next_task(me) {
            // Stale entries (claimed by a helping waiter) pop and discard.
            run_task(&task);
            ran_any = true;
        }
        if ran_any {
            continue;
        }
        let state = lock(&shared.state);
        if state.pushes != seen {
            continue;
        }
        // Drain-then-exit ordering: shutdown is only honoured once every
        // deque is empty (the scan above), so a dropping pool never strands
        // a queued task (and with it a waiting scope).
        if state.shutdown {
            return;
        }
        drop(
            shared
                .work_ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let pool = WorkerPool::new(3);
        let input: Vec<f64> = (0..100).map(f64::from).collect();
        let mut out = vec![0.0; 100];
        let mut chunks: Vec<&mut [f64]> = out.chunks_mut(30).collect();
        pool.scope(|scope| {
            for (c, chunk) in chunks.iter_mut().enumerate() {
                let input = &input;
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = input[c * 30 + i] * 2.0;
                    }
                });
            }
        });
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, (i as f64) * 2.0);
        }
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let pool = WorkerPool::new(1);
        let value = pool.scope(|scope| {
            scope.spawn(|| {});
            42
        });
        assert_eq!(value, 42);
    }

    #[test]
    fn empty_scope_is_fine() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.scope(|_| "done"), "done");
    }

    #[test]
    fn more_tasks_than_workers_all_run() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn worker_count_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let done = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_threads_are_flagged() {
        assert!(!WorkerPool::on_worker_thread());
        let pool = WorkerPool::new(1);
        let on_worker = AtomicBool::new(false);
        let picked_up = AtomicBool::new(false);
        pool.scope(|scope| {
            scope.spawn(|| {
                on_worker.store(WorkerPool::on_worker_thread(), Ordering::SeqCst);
                picked_up.store(true, Ordering::SeqCst);
            });
            // Hold the scope closure open until a worker has run the task:
            // the submitter only starts helping once this closure returns,
            // so the flag above is guaranteed to have been read on a
            // genuine worker thread, never on the help path.
            while !picked_up.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
        assert!(on_worker.load(Ordering::SeqCst));
        assert!(!WorkerPool::on_worker_thread());
    }

    #[test]
    fn helped_jobs_run_with_the_pool_flag() {
        // One worker, kept busy by the first task until the second task has
        // run; the only thread that can run the second task is therefore
        // the submitter's help loop — which must raise the pool flag around
        // it and lower it again afterwards.
        let pool = WorkerPool::new(1);
        let worker_busy = AtomicBool::new(false);
        let release_worker = AtomicBool::new(false);
        let helped_flag = AtomicBool::new(false);
        let helper = Mutex::new(None::<std::thread::ThreadId>);
        pool.scope(|scope| {
            scope.spawn(|| {
                worker_busy.store(true, Ordering::SeqCst);
                while !release_worker.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            });
            while !worker_busy.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            scope.spawn(|| {
                helped_flag.store(WorkerPool::on_worker_thread(), Ordering::SeqCst);
                *lock(&helper) = Some(std::thread::current().id());
                release_worker.store(true, Ordering::SeqCst);
            });
        });
        assert!(helped_flag.load(Ordering::SeqCst));
        assert_eq!(*lock(&helper), Some(std::thread::current().id()));
        assert!(!WorkerPool::on_worker_thread());
    }

    #[test]
    fn reentrant_scope_on_a_pool_worker_completes() {
        // A task running on the pool's only worker opens a nested scope on
        // the same pool: the nested tasks can never be picked up by a free
        // worker, so the waiting task must drain them itself
        // (help-while-wait). Before that scheduling, this test deadlocked.
        let pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.scope(|outer| {
            let (pool, count) = (&pool, &count);
            outer.spawn(move || {
                pool.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().workers() >= 1);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn stealing_rebalances_a_straggler_backlog() {
        // Two workers. The round-robin injector alternates tasks between
        // their deques; the first task on worker 0's deque blocks until
        // every other task has run. If worker 1 (and the helping submitter)
        // could not steal from worker 0's deque, the tasks queued behind
        // the blocker would never run and this test would deadlock.
        let pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        const OTHERS: usize = 31;
        pool.scope(|scope| {
            let done = &done;
            scope.spawn(move || {
                while done.load(Ordering::SeqCst) < OTHERS {
                    std::thread::yield_now();
                }
            });
            for _ in 0..OTHERS {
                scope.spawn(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), OTHERS);
    }

    #[test]
    fn steal_half_takes_the_back_half() {
        // Directly exercise the steal arithmetic: victim with 5 entries
        // keeps the front 2 (it owns the oldest), the thief gets 3 from the
        // back and runs the first of them.
        let shared = Shared {
            workers: (0..2)
                .map(|_| WorkerQueue {
                    deque: Mutex::new(VecDeque::new()),
                })
                .collect(),
            state: Mutex::new(PoolState {
                pushes: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            next_worker: AtomicUsize::new(0),
        };
        let latch = Arc::new(Latch::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5usize {
            latch.add_task();
            let latch_for_task = Arc::clone(&latch);
            let order = Arc::clone(&order);
            let run: Box<dyn FnOnce() + Send> = Box::new(move || {
                lock(&order).push(i);
                drop(latch_for_task); // keep the latch alive like a real task
            });
            lock(&shared.workers[0].deque).push_back(Arc::new(Task {
                latch: Arc::clone(&latch),
                run: Mutex::new(Some(run)),
            }));
        }
        // Worker 1 is empty: next_task must steal from worker 0's back.
        let stolen = shared.next_task(1).expect("steals a task");
        assert!(run_task(&stolen));
        assert_eq!(*lock(&order), vec![2], "thief runs the first stolen task");
        assert_eq!(
            lock(&shared.workers[0].deque).len(),
            2,
            "victim keeps front"
        );
        assert_eq!(lock(&shared.workers[1].deque).len(), 2, "thief keeps rest");
        // Owner still pops its front in order.
        let own = shared.next_task(0).expect("owner pops front");
        assert!(run_task(&own));
        assert_eq!(*lock(&order), vec![2, 0]);
    }

    #[test]
    fn scope_exit_breaks_the_latch_task_cycle() {
        // Regression: `Latch.own` holds `Arc<Task>` and every task holds an
        // `Arc<Latch>` back. When workers claim and finish tasks before the
        // helping submitter pops the matching own-list entries (the common
        // fast path), the scope used to exit with a non-empty own list and
        // leak the whole latch+tasks cycle on every completed scope. The
        // help loop must drain the list on exit so the latch is freed.
        let pool = WorkerPool::new(2);
        let mut leaked = Vec::new();
        for _ in 0..32 {
            let weak = pool.scope(|scope| {
                for _ in 0..16 {
                    scope.spawn(|| {});
                }
                Arc::downgrade(&scope.latch)
            });
            leaked.push(weak);
        }
        // A worker may still hold a stale `Arc<Task>` it popped moments
        // ago; give the deques a bounded window to drain before asserting.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while leaked.iter().any(|weak| weak.upgrade().is_some())
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        let alive = leaked
            .iter()
            .filter(|weak| weak.upgrade().is_some())
            .count();
        assert_eq!(alive, 0, "every completed scope's latch must be freed");
    }

    #[test]
    fn stale_entries_are_discarded_not_rerun() {
        // A task claimed through one queue must be a no-op when its other
        // queue entry is popped: run_task returns false and the closure
        // never runs twice.
        let latch = Arc::new(Latch::new());
        latch.add_task();
        let runs = Arc::new(AtomicUsize::new(0));
        let runs_in_task = Arc::clone(&runs);
        let task = Arc::new(Task {
            latch: Arc::clone(&latch),
            run: Mutex::new(Some(Box::new(move || {
                runs_in_task.fetch_add(1, Ordering::SeqCst);
            }))),
        });
        assert!(run_task(&task), "first pop claims and runs");
        assert!(!run_task(&task), "second pop is stale");
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(lock(&latch.state).pending, 0, "finish counted exactly once");
    }
}
