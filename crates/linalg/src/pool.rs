//! A persistent worker pool for the parallel kernels.
//!
//! The scoped-thread dispatch in [`crate::ParallelPolicy`]'s kernels spawns
//! OS threads on every call (~10–50 µs each), which erases the multi-core
//! win exactly where it matters most: small serving micro-batches, where the
//! kernel itself runs for comparable time. [`WorkerPool`] removes that cost
//! by parking N long-lived workers on a shared injector queue
//! ([`std::sync::Mutex`] + [`std::sync::Condvar`], no new dependencies) and
//! handing them row-band tasks through [`WorkerPool::scope`].
//!
//! ## Borrowed-closure dispatch
//!
//! [`std::thread::scope`] lets spawned closures borrow from the caller's
//! stack because the compiler proves every thread is joined before the scope
//! returns. A long-lived pool cannot get that proof from the compiler, so
//! [`WorkerPool::scope`] reconstructs the same guarantee by hand: every task
//! spawned through a [`PoolScope`] is counted on a completion latch, and
//! `scope` does not return — not even by unwinding — until the latch has
//! seen every task finish. Only then can the borrows the tasks captured go
//! out of scope, which is what makes the internal lifetime erasure sound.
//!
//! ## Panic propagation
//!
//! A panicking task never takes a worker down: the panic payload is caught
//! on the worker, carried back through the latch, and re-raised on the
//! submitting thread once all of the scope's tasks have finished — the same
//! observable behaviour as [`std::thread::scope`]. The pool stays fully
//! usable afterwards (it does not poison).
//!
//! ## Deadlock safety and help scheduling
//!
//! A thread waiting on a scope does not merely sleep: it *helps*, draining
//! its own scope's queued jobs until the scope completes. A nested `scope`
//! on a pool worker — or a pooled kernel reached through an intermediate
//! spawn-path scoped thread — therefore executes its jobs itself rather
//! than waiting for a worker that is blocked further up the same call
//! stack, so no nesting shape can deadlock the pool. Helping is bounded to
//! the waiting scope's *own* jobs: a small serving scope never gets stuck
//! executing an unrelated scope's long-running band (say, a large training
//! job) before it can observe its own completion. Once none of its jobs
//! remain queued, the stragglers are already running on other threads and
//! the waiter sleeps on the scope's latch.
//!
//! Every pool job — whether picked up by a worker or executed by a helping
//! waiter — runs with a thread-local flag set
//! ([`WorkerPool::on_worker_thread`]) that lets the kernels skip the queue
//! entirely for nested dispatch and run inline — bitwise identical, and
//! cheaper than help-routing.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A queued unit of work: a type-erased closure tagged with the identity of
/// the scope it belongs to, so helping threads can pick out their own
/// scope's jobs from the shared queue.
struct Job {
    /// Address of the owning scope's [`Latch`] — used purely as an
    /// identity, never dereferenced. It cannot dangle-and-collide while the
    /// job is queued: the job's closure holds an `Arc` to that latch, so
    /// the allocation outlives the job.
    scope: usize,
    run: Box<dyn FnOnce() + Send + 'static>,
}

thread_local! {
    /// `true` on threads owned by any [`WorkerPool`], and on any thread for
    /// the duration of a pool job it executes on the help path.
    static ON_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Executes a job with the pool flag raised, restoring the caller's flag
/// state afterwards. Kernels consult the flag to run nested dispatch
/// inline, and that must hold on the help path exactly as it does on a
/// worker thread. The job's own wrapper already catches user panics; the
/// nested catch here exists for one exotic escape: a caught panic payload
/// whose *own destructor* panics when dropped. The payload is dropped by
/// the inner `drop`, inside the outer catch, so even that cannot kill a
/// worker thread or double-panic a helping caller's unwind.
fn run_flagged(run: Box<dyn FnOnce() + Send>) {
    let was = ON_POOL_WORKER.with(|flag| flag.replace(true));
    let _ = catch_unwind(AssertUnwindSafe(move || {
        drop(catch_unwind(AssertUnwindSafe(run)));
    }));
    ON_POOL_WORKER.with(|flag| flag.set(was));
}

/// Locks a mutex, recovering from poisoning: the pool's shared state is a
/// plain job queue whose invariants hold between every two statements, and
/// user panics are caught before they can unwind through a held guard, so a
/// poisoned lock only ever means "some unrelated thread panicked" — refusing
/// to continue would turn one propagated panic into a deadlocked pool.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The injector queue shared by all workers of one pool.
struct Shared {
    queue: Mutex<Injector>,
    /// Signalled when a job is pushed or shutdown begins.
    work_ready: Condvar,
}

struct Injector {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Completion latch of one [`PoolScope`]: how many spawned tasks are still
/// running, plus the first panic payload any of them raised.
struct Latch {
    state: Mutex<LatchState>,
    all_done: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new() -> Self {
        Self {
            state: Mutex::new(LatchState {
                pending: 0,
                panic: None,
            }),
            all_done: Condvar::new(),
        }
    }

    /// Registers one more in-flight task.
    fn add_task(&self) {
        lock(&self.state).pending += 1;
    }

    /// Marks one task finished, recording its panic payload if it is the
    /// scope's first.
    fn finish_task(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = lock(&self.state);
        state.pending -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.pending == 0 {
            self.all_done.notify_all();
        }
    }

    /// Takes the first recorded panic payload, if any task panicked.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.state).panic.take()
    }
}

/// A fixed-size pool of persistent worker threads executing borrowed
/// closures submitted through [`WorkerPool::scope`].
///
/// Dropping the pool shuts it down cleanly: the workers finish every job
/// already queued (there can be none unless a scope is still waiting on
/// them), then exit and are joined.
///
/// ```
/// use sls_linalg::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let data = vec![1.0f64, 2.0, 3.0, 4.0];
/// let (left, right) = data.split_at(2);
/// let mut sums = [0.0f64; 2];
/// let (s0, s1) = sums.split_at_mut(1);
/// pool.scope(|scope| {
///     scope.spawn(|| s0[0] = left.iter().sum());
///     scope.spawn(|| s1[0] = right.iter().sum());
/// });
/// assert_eq!(sums, [3.0, 7.0]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Starts a pool with `workers` persistent threads (clamped to at
    /// least 1 — a pool with no workers could never run a queued job).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Injector {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sls-pool-worker-{id}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// `true` when called from a thread owned by any [`WorkerPool`], or
    /// while the calling thread is executing a pool job on the help path
    /// (a scope waiter draining its own jobs — see [`WorkerPool::scope`]).
    ///
    /// Kernels use this to short-circuit nested dispatch: a task already
    /// executing on behalf of the pool runs nested row bands inline instead
    /// of round-tripping them through the queue. This is an optimisation,
    /// not the liveness guarantee — waiting scopes help drain the queue, so
    /// even un-flagged nesting cannot deadlock.
    pub fn on_worker_thread() -> bool {
        ON_POOL_WORKER.with(Cell::get)
    }

    /// The process-global pool used by the kernels when a
    /// [`crate::ParallelPolicy`] has its `pool` flag set.
    ///
    /// Lazily started on first use with one worker per available core minus
    /// one (at least one) — the submitting thread always executes one row
    /// band itself, so workers + submitter together saturate the machine.
    /// The pool lives for the rest of the process; it is an execution
    /// resource, never part of any serialized artifact.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            WorkerPool::new(cores.saturating_sub(1).max(1))
        })
    }

    /// Runs `f` with a [`PoolScope`] through which it can spawn tasks that
    /// borrow from the enclosing stack frame, then blocks until every
    /// spawned task has finished.
    ///
    /// The calling thread is expected to do a share of the work itself
    /// inside `f` (the kernels run their first row band inline) — `scope`
    /// only sleeps once `f` returns and tasks are still in flight.
    ///
    /// # Panics
    ///
    /// If a spawned task panics, the first panic payload is re-raised here
    /// after all tasks of the scope have finished, mirroring
    /// [`std::thread::scope`]. If `f` itself panics, its panic propagates —
    /// also only after every already-spawned task has finished, so borrowed
    /// data is never freed under a running task.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let latch = Arc::new(Latch::new());
        let scope = PoolScope {
            pool: self,
            latch: Arc::clone(&latch),
            _env: PhantomData,
        };

        /// Waits for the scope's tasks on *every* exit path, including the
        /// caller's closure unwinding: the lifetime-erasure safety argument
        /// requires that no task can outlive this stack frame.
        struct WaitGuard<'a> {
            pool: &'a WorkerPool,
            latch: &'a Latch,
        }
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.pool.help_until_done(self.latch);
            }
        }

        let result = {
            let _guard = WaitGuard {
                pool: self,
                latch: &latch,
            };
            f(&scope)
        };
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
        result
    }

    /// Blocks until `latch` has counted every task of one scope as
    /// finished, executing that scope's still-queued jobs while waiting.
    ///
    /// The helping is what makes `scope` deadlock-free under *any* nesting:
    /// a scope waited on from a pool worker (re-entrant `scope`), or from a
    /// thread a pool worker is itself blocked on (a pooled kernel reached
    /// through an intermediate spawn-path scoped thread), drains its own
    /// jobs instead of waiting for a worker that will never come.
    ///
    /// Help is bounded to the waiting scope's own jobs on purpose: popping
    /// arbitrary queue entries would let a thread waiting on a small
    /// serving scope get stuck under an unrelated scope's long-running band
    /// (unbounded added tail latency for pooled micro-batch requests under
    /// mixed training+serving load). Liveness does not need cross-scope
    /// help — unrelated queued jobs are drained by the workers and by their
    /// *own* waiting submitters.
    ///
    /// Once none of this scope's jobs remain queued, every remaining task
    /// is already running on some other thread, so a plain condvar wait
    /// cannot strand work. That rests on an invariant the borrow checker
    /// enforces: spawning onto a scope ends when its closure returns,
    /// because [`PoolScope::spawn`] bounds tasks by `'env` (stricter than
    /// [`std::thread::scope`]'s `'scope`), so a task can never capture the
    /// scope handle and spawn siblings later — the attempt is a compile
    /// error (`E0521`, borrowed data escapes the closure).
    fn help_until_done(&self, latch: &Latch) {
        let own = latch as *const Latch as usize;
        loop {
            if lock(&latch.state).pending == 0 {
                return;
            }
            let job = {
                let mut queue = lock(&self.shared.queue);
                queue
                    .jobs
                    .iter()
                    .position(|job| job.scope == own)
                    .and_then(|at| queue.jobs.remove(at))
            };
            match job {
                Some(job) => run_flagged(job.run),
                None => {
                    let mut state = lock(&latch.state);
                    while state.pending > 0 {
                        state = latch
                            .all_done
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    return;
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Scope handle passed to the closure of [`WorkerPool::scope`].
///
/// `'env` is the lifetime of borrows captured by spawned tasks; it is
/// invariant (as in [`std::thread::Scope`]) so the compiler cannot shrink it
/// to something that dies before `scope` returns.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    latch: Arc<Latch>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope")
            .field("pool", self.pool)
            .finish()
    }
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `task` on the pool. It may borrow anything that outlives the
    /// enclosing [`WorkerPool::scope`] call.
    ///
    /// Unlike [`std::thread::Scope::spawn`], the task is bounded by `'env`
    /// rather than a `'scope` lifetime, so a task **cannot capture the
    /// scope handle** and spawn siblings from inside the pool — such code
    /// fails to compile. This is deliberate: the scope's wait logic relies
    /// on no task being spawned after the scope closure returns (open a
    /// nested [`WorkerPool::scope`] from within a task instead; that is
    /// fully supported).
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.latch.add_task();
        let latch = Arc::clone(&self.latch);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: the closure only has to live for the duration of the
        // enclosing `WorkerPool::scope` call, because `scope` blocks (on the
        // latch this task was just registered with) until the task has
        // finished — on the normal path and, via `WaitGuard`, when
        // unwinding. Erasing the lifetime to `'static` therefore never lets
        // the task observe a dead borrow; the transmute only changes the
        // trait object's lifetime bound, not its layout.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        let job = Job {
            scope: Arc::as_ptr(&self.latch) as usize,
            run: Box::new(move || {
                let panic = catch_unwind(AssertUnwindSafe(task)).err();
                latch.finish_task(panic);
            }),
        };
        let mut queue = lock(&self.pool.shared.queue);
        queue.jobs.push_back(job);
        drop(queue);
        self.pool.shared.work_ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    ON_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                // Drain-then-exit ordering: shutdown is only honoured once
                // the queue is empty, so a dropping pool never strands a
                // queued job (and with it a waiting scope).
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // `run_flagged` re-raises the (already set) worker flag around the
        // job and, belt-and-braces, keeps the worker alive even if a panic
        // payload's own destructor panics.
        run_flagged(job.run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let pool = WorkerPool::new(3);
        let input: Vec<f64> = (0..100).map(f64::from).collect();
        let mut out = vec![0.0; 100];
        let mut chunks: Vec<&mut [f64]> = out.chunks_mut(30).collect();
        pool.scope(|scope| {
            for (c, chunk) in chunks.iter_mut().enumerate() {
                let input = &input;
                scope.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = input[c * 30 + i] * 2.0;
                    }
                });
            }
        });
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, (i as f64) * 2.0);
        }
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let pool = WorkerPool::new(1);
        let value = pool.scope(|scope| {
            scope.spawn(|| {});
            42
        });
        assert_eq!(value, 42);
    }

    #[test]
    fn empty_scope_is_fine() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.scope(|_| "done"), "done");
    }

    #[test]
    fn more_tasks_than_workers_all_run() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn worker_count_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let done = AtomicUsize::new(0);
        pool.scope(|scope| {
            scope.spawn(|| {
                done.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_threads_are_flagged() {
        assert!(!WorkerPool::on_worker_thread());
        let pool = WorkerPool::new(1);
        let on_worker = AtomicBool::new(false);
        let picked_up = AtomicBool::new(false);
        pool.scope(|scope| {
            scope.spawn(|| {
                on_worker.store(WorkerPool::on_worker_thread(), Ordering::SeqCst);
                picked_up.store(true, Ordering::SeqCst);
            });
            // Hold the scope closure open until a worker has run the task:
            // the submitter only starts helping once this closure returns,
            // so the flag above is guaranteed to have been read on a
            // genuine worker thread, never on the help path.
            while !picked_up.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
        assert!(on_worker.load(Ordering::SeqCst));
        assert!(!WorkerPool::on_worker_thread());
    }

    #[test]
    fn helped_jobs_run_with_the_pool_flag() {
        // One worker, kept busy by the first task until the second task has
        // run; the only thread that can run the second task is therefore
        // the submitter's help loop — which must raise the pool flag around
        // it and lower it again afterwards.
        let pool = WorkerPool::new(1);
        let worker_busy = AtomicBool::new(false);
        let release_worker = AtomicBool::new(false);
        let helped_flag = AtomicBool::new(false);
        let helper = Mutex::new(None::<std::thread::ThreadId>);
        pool.scope(|scope| {
            scope.spawn(|| {
                worker_busy.store(true, Ordering::SeqCst);
                while !release_worker.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            });
            while !worker_busy.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            scope.spawn(|| {
                helped_flag.store(WorkerPool::on_worker_thread(), Ordering::SeqCst);
                *lock(&helper) = Some(std::thread::current().id());
                release_worker.store(true, Ordering::SeqCst);
            });
        });
        assert!(helped_flag.load(Ordering::SeqCst));
        assert_eq!(*lock(&helper), Some(std::thread::current().id()));
        assert!(!WorkerPool::on_worker_thread());
    }

    #[test]
    fn reentrant_scope_on_a_pool_worker_completes() {
        // A task running on the pool's only worker opens a nested scope on
        // the same pool: the nested jobs can never be picked up by a free
        // worker, so the waiting task must drain them itself
        // (help-while-wait). Before that scheduling, this test deadlocked.
        let pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.scope(|outer| {
            let (pool, count) = (&pool, &count);
            outer.spawn(move || {
                pool.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().workers() >= 1);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
