//! Free functions on `&[f64]` slices.
//!
//! The RBM update rules operate on individual rows (visible vectors, hidden
//! activations, cluster centres); these helpers keep that code readable
//! without allocating intermediate matrices.

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn l2_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Manhattan (L1) norm.
#[inline]
pub fn l1_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Maximum-absolute-value (L∞) norm.
#[inline]
pub fn linf_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a += b`, element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "add_assign: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `y += alpha * x` (the BLAS axpy primitive).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Returns `alpha * a` as a new vector.
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

/// Scales `a` by `alpha` in place.
pub fn scale_assign(alpha: f64, a: &mut [f64]) {
    for x in a {
        *x *= alpha;
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance (divides by `n`); `0.0` for an empty slice.
pub fn variance(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l1_norm(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(linf_norm(&[-1.0, 2.0, -3.0]), 3.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn sub_and_add_assign() {
        let d = sub(&[5.0, 7.0], &[2.0, 3.0]);
        assert_eq!(d, vec![3.0, 4.0]);
        let mut a = vec![1.0, 1.0];
        add_assign(&mut a, &[2.0, 3.0]);
        assert_eq!(a, vec![3.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn scale_variants() {
        assert_eq!(scale(3.0, &[1.0, -2.0]), vec![3.0, -6.0]);
        let mut v = vec![1.0, -2.0];
        scale_assign(-1.0, &mut v);
        assert_eq!(v, vec![-1.0, 2.0]);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(variance(&[]), 0.0);
        // Var([1,2,3,4]) with population normalisation = 1.25
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 1.25).abs() < 1e-12);
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }
}
