//! Random matrix constructors.
//!
//! Every stochastic routine in the workspace takes an explicit random number
//! generator so experiments can be reproduced from a single seed. The
//! constructors here mirror the initialisation schemes used by the paper's
//! training procedure: small zero-mean Gaussian weights, uniform noise and
//! Bernoulli sampling of binary units.

use crate::Matrix;
use rand::Rng;

/// Extension trait adding seeded random constructors to [`Matrix`].
pub trait MatrixRandomExt: Sized {
    /// Matrix with entries drawn independently from `N(mean, std^2)`.
    fn random_normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut impl Rng) -> Self;

    /// Matrix with entries drawn independently from `U[low, high)`.
    fn random_uniform(rows: usize, cols: usize, low: f64, high: f64, rng: &mut impl Rng) -> Self;

    /// Binary matrix whose entries are `1.0` with probability `p`.
    fn random_bernoulli(rows: usize, cols: usize, p: f64, rng: &mut impl Rng) -> Self;

    /// Samples a binary matrix from a matrix of per-entry probabilities.
    ///
    /// This is the Gibbs sampling step of CD learning: each probability is
    /// compared with an independent uniform draw.
    fn sample_bernoulli(probabilities: &Matrix, rng: &mut impl Rng) -> Self;

    /// Adds independent `N(0, std^2)` noise to every element of `base`.
    fn with_gaussian_noise(base: &Matrix, std: f64, rng: &mut impl Rng) -> Self;
}

/// Draws one standard-normal variate via the Box–Muller transform.
///
/// `rand` 0.8 without `rand_distr` has no normal distribution, so we roll the
/// classic two-uniform transform; the second variate of the pair is discarded
/// to keep the call site simple (weight initialisation is not a hot path).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl MatrixRandomExt for Matrix {
    fn random_normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
    }

    fn random_uniform(rows: usize, cols: usize, low: f64, high: f64, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(low..high))
    }

    fn random_bernoulli(rows: usize, cols: usize, p: f64, rng: &mut impl Rng) -> Self {
        Matrix::from_fn(
            rows,
            cols,
            |_, _| if rng.gen::<f64>() < p { 1.0 } else { 0.0 },
        )
    }

    fn sample_bernoulli(probabilities: &Matrix, rng: &mut impl Rng) -> Self {
        probabilities.map(|p| if rng.gen::<f64>() < p { 1.0 } else { 0.0 })
    }

    fn with_gaussian_noise(base: &Matrix, std: f64, rng: &mut impl Rng) -> Self {
        base.map(|x| x + std * standard_normal(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = rng();
        let m = Matrix::random_normal(200, 200, 1.5, 0.5, &mut r);
        let mean = m.mean();
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / m.len() as f64;
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = rng();
        let m = Matrix::random_uniform(50, 50, -2.0, 3.0, &mut r);
        assert!(m.min().unwrap() >= -2.0);
        assert!(m.max().unwrap() < 3.0);
        // Mean should be near the midpoint 0.5.
        assert!((m.mean() - 0.5).abs() < 0.1);
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut r = rng();
        let m = Matrix::random_bernoulli(100, 100, 0.3, &mut r);
        assert!(m.as_slice().iter().all(|&x| x == 0.0 || x == 1.0));
        assert!((m.mean() - 0.3).abs() < 0.02);
    }

    #[test]
    fn sample_bernoulli_respects_extremes() {
        let mut r = rng();
        let probs = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let s = Matrix::sample_bernoulli(&probs, &mut r);
        assert_eq!(
            s,
            Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap()
        );
    }

    #[test]
    fn gaussian_noise_centres_on_base() {
        let mut r = rng();
        let base = Matrix::filled(100, 100, 2.0);
        let noisy = Matrix::with_gaussian_noise(&base, 0.1, &mut r);
        assert!((noisy.mean() - 2.0).abs() < 0.01);
        assert_ne!(noisy, base);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = Matrix::random_normal(5, 5, 0.0, 1.0, &mut rng());
        let b = Matrix::random_normal(5, 5, 0.0, 1.0, &mut rng());
        assert_eq!(a, b);
    }
}
