//! # sls-linalg
//!
//! Dense linear-algebra substrate for the `sls-rbm` workspace.
//!
//! The paper's models (RBM, GRBM and their self-learning local supervision
//! variants) only need a small, predictable subset of linear algebra:
//! row-major dense matrices, matrix products (including the transposed
//! variants used by contrastive divergence), element-wise maps, per-column
//! statistics and pairwise distances. This crate implements exactly that
//! subset from scratch so the rest of the workspace has no dependency on an
//! external numerics stack.
//!
//! ## Design notes
//!
//! * [`Matrix`] is a row-major `Vec<f64>` with explicit `rows`/`cols`; rows
//!   are the natural unit of work for mini-batch training, so row views are
//!   cheap slices.
//! * All fallible constructors return [`LinalgError`] instead of panicking;
//!   panics are reserved for out-of-bounds indexing, which mirrors the
//!   standard library's slice behaviour.
//! * Randomized constructors take an explicit `&mut impl Rng` so experiments
//!   are reproducible end to end from a single seed.
//! * The matrix products and row-wise maps/reductions have row-partitioned
//!   parallel variants behind [`ParallelPolicy`] (see the `*_with` methods);
//!   parallel results are **bitwise identical** to serial ones, so turning
//!   parallelism on never changes a reproduced number. Fanned-out kernels
//!   run on scoped threads or, with the policy's `pool` flag, on the
//!   persistent [`WorkerPool`] that removes per-call thread-spawn latency.
//! * The kernel inner loops run through the [`mod@simd`] layer: manually
//!   unrolled 4-lane building blocks (autovectorisable on stable Rust) with
//!   a scalar fallback ([`SimdPolicy`], env `SLS_SIMD`) that computes the
//!   same canonical reduction order — so the SIMD axis, like the thread
//!   axis, never changes an output bit. `matmul_transpose_right` adds
//!   `j`-loop cache tiling on top (see
//!   [`Matrix::matmul_transpose_right_tiled_with`]).
//!
//! ## Quick example
//!
//! ```
//! use sls_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod matrix;
mod norms;
mod ops;
mod parallel;
mod pool;
mod random;
pub mod simd;
mod stats;
mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use norms::{
    euclidean_distance, pairwise_distances, pairwise_distances_with, squared_euclidean_distance,
};
pub use parallel::{
    ParallelPolicy, DEFAULT_MIN_ROWS_PER_THREAD, ENV_MIN_ROWS, ENV_POOL, ENV_SIMD, ENV_THREADS,
};
pub use pool::{PoolScope, WorkerPool};
pub use random::MatrixRandomExt;
pub use simd::SimdPolicy;
pub use stats::{ColumnStats, Standardizer};
pub use vector::{
    add_assign, axpy, dot, l1_norm, l2_norm, linf_norm, mean, scale, scale_assign, sub, variance,
};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
