//! 4-lane f64 building blocks for the kernel inner loops.
//!
//! Stable Rust has no portable SIMD API, but LLVM autovectorises loops whose
//! iterations are independent. The blockers in the old scalar kernels were
//! the *reductions*: a sequential `sum += a[i] * b[i]` carries a dependency
//! through every FP add (4–5 cycle latency each), so `dot` ran an order of
//! magnitude below what the load ports allow, and with it
//! `matmul_transpose_right`. This module restructures those loops into
//! **independent accumulators** ([`LANES`]-wide element-wise blocks,
//! [`DOT_ACCUMULATORS`] parallel chains for the dot reduction) — the manual
//! unrolling LLVM needs to emit packed adds/FMAs — with no nightly features
//! and no new dependencies.
//!
//! ## One reduction order, two codegen shapes
//!
//! Splitting a sum into independent accumulators changes the floating-point
//! result, so the accumulator count and combine order are part of the
//! numeric contract. Every reduction here commits to one **canonical
//! order**, regardless of whether SIMD is enabled:
//!
//! * element `i` of a complete [`DOT_ACCUMULATORS`]-chunk accumulates into
//!   lane `i % DOT_ACCUMULATORS`, in ascending `i` within each lane;
//! * lanes combine sequentially in ascending lane order, starting from
//!   `+0.0`;
//! * the ragged tail (`len % DOT_ACCUMULATORS` trailing elements) is added
//!   sequentially onto the combined sum, in ascending order.
//!
//! [`SimdPolicy::Lanes4`] runs the manually unrolled form (autovectorisable:
//! a flat accumulator array updated through `chunks_exact`, which LLVM
//! turns into packed adds); [`SimdPolicy::Scalar`] runs a plain indexed
//! loop that performs the *same operations in the same order* through a
//! rotating lane index the vectoriser does not untangle. Both produce
//! **bitwise identical** results for every input — the property suite
//! asserts it across every tail length — so `SLS_SIMD=0` is a first-class
//! fallback, not a second numeric universe. For slices shorter than one
//! chunk the canonical order degenerates to the plain sequential sum.
//!
//! Element-wise passes (`axpy`, the fused bias+activation maps) have no
//! cross-element reduction at all; both code shapes are trivially bitwise
//! identical there and the policy only selects codegen.

/// Unroll width of the element-wise building blocks (`axpy`, the fused
/// bias+activation maps): four f64 lanes fill one AVX2 register (256 bits)
/// and two NEON/SSE2 registers, and element-wise loops carry no dependency
/// chain, so one register's width is all the unrolling they need.
pub const LANES: usize = 4;

/// Number of independent accumulators in the dot-product reduction: 4
/// vector-register chains of [`LANES`] f64 lanes.
///
/// Unlike the element-wise passes, a reduction carries its dependency
/// through every FP add (~4-cycle latency on mainstream cores against a
/// 2-per-cycle add/FMA issue rate), so one vector accumulator leaves the
/// units ~8x idle. Four chains of four lanes cover the latency×throughput
/// product; measured on the bench workloads this roughly doubles `dot`
/// over a single-register 4-accumulator version and is what brings
/// `matmul_transpose_right` inside the roadmap's 1.4x-of-`matmul` envelope.
pub const DOT_ACCUMULATORS: usize = 4 * LANES;

/// Whether the kernel inner loops run the unrolled (autovectorisable) form
/// or the scalar fallback. Both forms compute the identical canonical
/// reduction order (see the module docs), so flipping the policy never
/// changes an output bit — only codegen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Plain indexed loops: same reduction order, scalar codegen. The
    /// fallback CI keeps first-class via `SLS_SIMD=0`.
    Scalar,
    /// Manually unrolled independent-accumulator loops (4-lane element-wise
    /// blocks, 16-accumulator dot) that LLVM turns into packed vector code
    /// on every target with 128-bit or wider FP units.
    #[default]
    Lanes4,
}

impl SimdPolicy {
    /// Maps the boolean surfaces (`SLS_SIMD`, `--simd`) onto the policy:
    /// `true` → [`SimdPolicy::Lanes4`], `false` → [`SimdPolicy::Scalar`].
    pub fn from_enabled(enabled: bool) -> Self {
        if enabled {
            Self::Lanes4
        } else {
            Self::Scalar
        }
    }

    /// `true` for [`SimdPolicy::Lanes4`].
    pub fn is_enabled(self) -> bool {
        matches!(self, Self::Lanes4)
    }
}

/// Dot product in the canonical [`DOT_ACCUMULATORS`]-lane order.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64], simd: SimdPolicy) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match simd {
        SimdPolicy::Lanes4 => dot_unrolled(a, b),
        SimdPolicy::Scalar => dot_scalar(a, b),
    }
}

/// Unrolled form: a flat array of independent accumulators updated chunk by
/// chunk, which LLVM vectorises into 4 parallel chains of packed
/// multiplies/adds.
#[inline]
fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0; DOT_ACCUMULATORS];
    let a_chunks = a.chunks_exact(DOT_ACCUMULATORS);
    let b_chunks = b.chunks_exact(DOT_ACCUMULATORS);
    let a_tail = a_chunks.remainder();
    let b_tail = b_chunks.remainder();
    for (xa, xb) in a_chunks.zip(b_chunks) {
        for lane in 0..DOT_ACCUMULATORS {
            acc[lane] += xa[lane] * xb[lane];
        }
    }
    let mut sum = 0.0;
    for lane_sum in acc {
        sum += lane_sum;
    }
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += x * y;
    }
    sum
}

/// Scalar form: the identical operations in the identical order, expressed
/// as one indexed loop over a rotating lane index.
#[inline]
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let complete = a.len() - a.len() % DOT_ACCUMULATORS;
    let mut acc = [0.0; DOT_ACCUMULATORS];
    for i in 0..complete {
        acc[i % DOT_ACCUMULATORS] += a[i] * b[i];
    }
    let mut sum = 0.0;
    for lane_sum in acc {
        sum += lane_sum;
    }
    for i in complete..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// `y += alpha * x`, element-wise (the BLAS axpy primitive).
///
/// No cross-element reduction exists here, so both policy arms are bitwise
/// identical by construction; [`SimdPolicy::Lanes4`] only guarantees the
/// unrolled, packed codegen.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64], simd: SimdPolicy) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match simd {
        SimdPolicy::Lanes4 => {
            let mut y_chunks = y.chunks_exact_mut(LANES);
            let mut x_chunks = x.chunks_exact(LANES);
            for (ya, xa) in y_chunks.by_ref().zip(x_chunks.by_ref()) {
                ya[0] += alpha * xa[0];
                ya[1] += alpha * xa[1];
                ya[2] += alpha * xa[2];
                ya[3] += alpha * xa[3];
            }
            for (yi, xi) in y_chunks
                .into_remainder()
                .iter_mut()
                .zip(x_chunks.remainder())
            {
                *yi += alpha * xi;
            }
        }
        SimdPolicy::Scalar => {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi += alpha * xi;
            }
        }
    }
}

/// Numerically stable logistic sigmoid `1 / (1 + e^{-x})`.
///
/// Lives here so the fused activation passes and the model layer share one
/// definition (the exponential itself is a scalar libm call either way; the
/// SIMD win in [`fused_bias_sigmoid`] is the vectorised bias add and the
/// removal of the per-element zip bookkeeping).
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Fused bias broadcast + sigmoid: `out[j] = sigmoid(pre[j] + bias[j])`.
///
/// The activation pass behind every `p(h|v)` / binary reconstruction in the
/// model layer. Element-wise, so both policy arms are bitwise identical.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn fused_bias_sigmoid(pre: &[f64], bias: &[f64], out: &mut [f64], simd: SimdPolicy) {
    assert_eq!(pre.len(), out.len(), "fused_bias_sigmoid: length mismatch");
    assert_eq!(bias.len(), out.len(), "fused_bias_sigmoid: length mismatch");
    match simd {
        SimdPolicy::Lanes4 => {
            let mut out_chunks = out.chunks_exact_mut(LANES);
            let mut pre_chunks = pre.chunks_exact(LANES);
            let mut bias_chunks = bias.chunks_exact(LANES);
            for ((oa, xa), ba) in out_chunks
                .by_ref()
                .zip(pre_chunks.by_ref())
                .zip(bias_chunks.by_ref())
            {
                // The adds vectorise; the four exps stay scalar libm calls.
                let t = [xa[0] + ba[0], xa[1] + ba[1], xa[2] + ba[2], xa[3] + ba[3]];
                oa[0] = sigmoid(t[0]);
                oa[1] = sigmoid(t[1]);
                oa[2] = sigmoid(t[2]);
                oa[3] = sigmoid(t[3]);
            }
            for ((o, x), b) in out_chunks
                .into_remainder()
                .iter_mut()
                .zip(pre_chunks.remainder())
                .zip(bias_chunks.remainder())
            {
                *o = sigmoid(x + b);
            }
        }
        SimdPolicy::Scalar => {
            for ((o, x), b) in out.iter_mut().zip(pre).zip(bias) {
                *o = sigmoid(x + b);
            }
        }
    }
}

/// Fused bias broadcast: `out[j] = pre[j] + bias[j]` — the Gaussian-visible
/// linear reconstruction pass. Element-wise; both policy arms bitwise
/// identical.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn fused_bias_add(pre: &[f64], bias: &[f64], out: &mut [f64], simd: SimdPolicy) {
    assert_eq!(pre.len(), out.len(), "fused_bias_add: length mismatch");
    assert_eq!(bias.len(), out.len(), "fused_bias_add: length mismatch");
    match simd {
        SimdPolicy::Lanes4 => {
            let mut out_chunks = out.chunks_exact_mut(LANES);
            let mut pre_chunks = pre.chunks_exact(LANES);
            let mut bias_chunks = bias.chunks_exact(LANES);
            for ((oa, xa), ba) in out_chunks
                .by_ref()
                .zip(pre_chunks.by_ref())
                .zip(bias_chunks.by_ref())
            {
                oa[0] = xa[0] + ba[0];
                oa[1] = xa[1] + ba[1];
                oa[2] = xa[2] + ba[2];
                oa[3] = xa[3] + ba[3];
            }
            for ((o, x), b) in out_chunks
                .into_remainder()
                .iter_mut()
                .zip(pre_chunks.remainder())
                .zip(bias_chunks.remainder())
            {
                *o = x + b;
            }
        }
        SimdPolicy::Scalar => {
            for ((o, x), b) in out.iter_mut().zip(pre).zip(bias) {
                *o = x + b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn vecs(len: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = (0..len).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let b = (0..len).map(|_| rng.gen_range(-3.0..3.0)).collect();
        (a, b)
    }

    #[test]
    fn policy_default_is_lanes4() {
        assert_eq!(SimdPolicy::default(), SimdPolicy::Lanes4);
        assert!(SimdPolicy::Lanes4.is_enabled());
        assert!(!SimdPolicy::Scalar.is_enabled());
        assert_eq!(SimdPolicy::from_enabled(true), SimdPolicy::Lanes4);
        assert_eq!(SimdPolicy::from_enabled(false), SimdPolicy::Scalar);
    }

    #[test]
    fn dot_arms_are_bitwise_identical_for_every_tail_length() {
        // Lengths covering every ragged remainder 0..=15 over zero, one and
        // two complete chunks: the tail is the classic bug site.
        for len in 0..=50 {
            let (a, b) = vecs(len, len as u64);
            let unrolled = dot(&a, &b, SimdPolicy::Lanes4);
            let scalar = dot(&a, &b, SimdPolicy::Scalar);
            assert_eq!(unrolled.to_bits(), scalar.to_bits(), "len = {len}");
        }
    }

    #[test]
    fn dot_degenerates_to_sequential_sum_below_one_chunk() {
        for len in 0..DOT_ACCUMULATORS {
            let (a, b) = vecs(len, 100 + len as u64);
            // Explicit fold from +0.0: `Iterator::sum` starts floats at
            // -0.0, which is `==` but not bitwise-equal for empty input.
            let sequential: f64 = a.iter().zip(&b).fold(0.0, |s, (x, y)| s + x * y);
            let canonical = dot(&a, &b, SimdPolicy::Lanes4);
            assert_eq!(sequential.to_bits(), canonical.to_bits(), "len = {len}");
        }
    }

    #[test]
    fn dot_matches_exact_arithmetic_on_integers() {
        // Small integers are exact in f64 under any summation order.
        let a: Vec<f64> = (1..=11).map(f64::from).collect();
        let b: Vec<f64> = (1..=11).map(|i| f64::from(i) * 2.0).collect();
        let expected: f64 = (1..=11).map(|i| f64::from(i * i * 2)).sum();
        assert_eq!(dot(&a, &b, SimdPolicy::Lanes4), expected);
        assert_eq!(dot(&a, &b, SimdPolicy::Scalar), expected);
    }

    #[test]
    fn dot_propagates_nan_in_chunks_and_tail() {
        for nan_at in [0, 3, 15, 16, 20] {
            let (mut a, b) = vecs(21, 7);
            a[nan_at] = f64::NAN;
            assert!(dot(&a, &b, SimdPolicy::Lanes4).is_nan(), "idx {nan_at}");
            assert!(dot(&a, &b, SimdPolicy::Scalar).is_nan(), "idx {nan_at}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0], SimdPolicy::Lanes4);
    }

    #[test]
    fn axpy_arms_are_bitwise_identical_for_every_tail_length() {
        for len in 0..=35 {
            let (x, y0) = vecs(len, 200 + len as u64);
            let mut y_unrolled = y0.clone();
            let mut y_scalar = y0.clone();
            axpy(0.37, &x, &mut y_unrolled, SimdPolicy::Lanes4);
            axpy(0.37, &x, &mut y_scalar, SimdPolicy::Scalar);
            let same = y_unrolled
                .iter()
                .zip(&y_scalar)
                .all(|(u, s)| u.to_bits() == s.to_bits());
            assert!(same, "len = {len}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        axpy(
            2.0,
            &[10.0, 20.0, 30.0, 40.0, 50.0],
            &mut y,
            SimdPolicy::Lanes4,
        );
        assert_eq!(y, vec![21.0, 42.0, 63.0, 84.0, 105.0]);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        for x in [-3.0, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_maps_arms_are_bitwise_identical() {
        for len in [0, 1, 3, 4, 5, 8, 13] {
            let (pre, bias) = vecs(len, 300 + len as u64);
            let mut sig_unrolled = vec![0.0; len];
            let mut sig_scalar = vec![0.0; len];
            fused_bias_sigmoid(&pre, &bias, &mut sig_unrolled, SimdPolicy::Lanes4);
            fused_bias_sigmoid(&pre, &bias, &mut sig_scalar, SimdPolicy::Scalar);
            assert_eq!(sig_unrolled, sig_scalar, "sigmoid len = {len}");
            for (o, (&x, &b)) in sig_scalar.iter().zip(pre.iter().zip(&bias)) {
                assert_eq!(o.to_bits(), sigmoid(x + b).to_bits());
            }

            let mut add_unrolled = vec![0.0; len];
            let mut add_scalar = vec![0.0; len];
            fused_bias_add(&pre, &bias, &mut add_unrolled, SimdPolicy::Lanes4);
            fused_bias_add(&pre, &bias, &mut add_scalar, SimdPolicy::Scalar);
            assert_eq!(add_unrolled, add_scalar, "add len = {len}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fused_bias_sigmoid_length_mismatch_panics() {
        fused_bias_sigmoid(&[1.0], &[1.0], &mut [0.0, 0.0], SimdPolicy::Lanes4);
    }
}
