//! # sls-clustering
//!
//! The three unsupervised clustering algorithms the paper builds on:
//!
//! * **K-means** (Lloyd's algorithm with k-means++ seeding) — `K-means` in
//!   Tables IV–IX.
//! * **Density peaks** (Rodriguez & Laio, *Science* 2014) — `DP` in the
//!   tables; the paper's strongest baseline.
//! * **Affinity propagation** (Frey & Dueck, *Science* 2007) — `AP`.
//!
//! They serve two distinct roles in the architecture:
//!
//! 1. as the *base clusterings* that are integrated (via unanimous voting in
//!    `sls-consensus`) into self-learning local supervision, and
//! 2. as the *evaluation clusterers* applied to raw features and to learned
//!    hidden features when reproducing the paper's tables.
//!
//! Every algorithm implements the common [`Clusterer`] trait so the pipeline
//! and the consensus machinery can treat them uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod affinity_propagation;
mod assignment;
mod density_peaks;
mod error;
mod kmeans;

pub use affinity_propagation::{AffinityPropagation, AffinityPropagationOutcome};
pub use assignment::ClusterAssignment;
pub use density_peaks::{DensityPeaks, DensityPeaksOutcome};
pub use error::ClusteringError;
pub use kmeans::{KMeans, KMeansOutcome};

use rand::Rng;
use sls_linalg::Matrix;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, ClusteringError>;

/// Common interface of all clustering algorithms in this crate.
///
/// Implementations take the data matrix (`instances x features`) and a
/// random number generator (algorithms that are deterministic simply ignore
/// it) and return a [`ClusterAssignment`].
///
/// The `Send + Sync` supertraits let the consensus layer run an ensemble of
/// boxed clusterers concurrently; implementations are plain configuration
/// structs, so the bounds are free.
pub trait Clusterer: Send + Sync {
    /// Short human-readable name used in experiment reports (e.g. `"K-means"`).
    fn name(&self) -> &'static str;

    /// Clusters the rows of `data`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input is empty or the algorithm's
    /// preconditions (e.g. `k <= n`) are violated.
    fn cluster(&self, data: &Matrix, rng: &mut dyn rand::RngCore) -> Result<ClusterAssignment>;
}

/// Convenience: run a clusterer boxed behind the trait with any `Rng`.
///
/// # Errors
///
/// Propagates the clusterer's error.
pub fn run_clusterer(
    clusterer: &dyn Clusterer,
    data: &Matrix,
    rng: &mut impl Rng,
) -> Result<ClusterAssignment> {
    clusterer.cluster(data, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    /// All three algorithms must recover well-separated blobs with high
    /// accuracy; this is the cross-algorithm smoke test.
    #[test]
    fn all_clusterers_recover_separated_blobs() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let ds = SyntheticBlobs::new(90, 5, 3)
            .separation(8.0)
            .generate(&mut rng);
        let clusterers: Vec<Box<dyn Clusterer>> = vec![
            Box::new(KMeans::new(3)),
            Box::new(DensityPeaks::new(3)),
            Box::new(AffinityPropagation::default().with_target_clusters(3)),
        ];
        for c in clusterers {
            let assignment = c.cluster(ds.features(), &mut rng).unwrap();
            let acc = sls_metrics::clustering_accuracy(assignment.labels(), ds.labels()).unwrap();
            assert!(
                acc > 0.9,
                "{} accuracy {acc} too low on separated blobs",
                c.name()
            );
        }
    }
}
