//! The result of running a clustering algorithm.

use serde::{Deserialize, Serialize};
use sls_linalg::Matrix;
use std::collections::BTreeMap;

/// A hard assignment of every instance to exactly one cluster, together with
/// the cluster centres in feature space.
///
/// Centres are always materialised (as the mean of the members) even for
/// algorithms that do not use centres internally (density peaks, affinity
/// propagation), because the consensus layer and the sls update rules need
/// cluster centres `O_k` in visible space (Eqs. 25–27 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterAssignment {
    labels: Vec<usize>,
    centers: Matrix,
    algorithm: String,
}

impl ClusterAssignment {
    /// Creates an assignment from labels, centres and the producing
    /// algorithm's name. Labels must index rows of `centers`.
    pub fn new(labels: Vec<usize>, centers: Matrix, algorithm: impl Into<String>) -> Self {
        debug_assert!(
            labels.iter().all(|&l| l < centers.rows().max(1)),
            "labels must index centre rows"
        );
        Self {
            labels,
            centers,
            algorithm: algorithm.into(),
        }
    }

    /// Recomputes centres as the per-cluster means of `data` and builds the
    /// assignment. Clusters that end up empty keep a zero centre.
    pub fn from_labels(labels: Vec<usize>, data: &Matrix, algorithm: impl Into<String>) -> Self {
        let k = labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut centers = Matrix::zeros(k, data.cols());
        let mut counts = vec![0usize; k];
        for (i, &l) in labels.iter().enumerate() {
            counts[l] += 1;
            let row = data.row(i);
            let c = centers.row_mut(l);
            for (cj, &xj) in c.iter_mut().zip(row) {
                *cj += xj;
            }
        }
        for (l, &count) in counts.iter().enumerate() {
            if count > 0 {
                let c = centers.row_mut(l);
                for cj in c.iter_mut() {
                    *cj /= count as f64;
                }
            }
        }
        Self {
            labels,
            centers,
            algorithm: algorithm.into(),
        }
    }

    /// Cluster label of every instance.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Cluster centres, one row per cluster.
    pub fn centers(&self) -> &Matrix {
        &self.centers
    }

    /// Name of the algorithm that produced this assignment.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Number of instances.
    pub fn n_instances(&self) -> usize {
        self.labels.len()
    }

    /// Number of clusters (centre rows).
    pub fn n_clusters(&self) -> usize {
        self.centers.rows()
    }

    /// Number of *non-empty* clusters.
    pub fn n_occupied_clusters(&self) -> usize {
        let mut seen: Vec<usize> = self.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Indices of the members of each cluster, keyed by cluster label.
    pub fn members(&self) -> BTreeMap<usize, Vec<usize>> {
        let mut map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, &l) in self.labels.iter().enumerate() {
            map.entry(l).or_default().push(i);
        }
        map
    }

    /// Sizes of each cluster, keyed by cluster label.
    pub fn cluster_sizes(&self) -> BTreeMap<usize, usize> {
        self.members()
            .into_iter()
            .map(|(l, m)| (l, m.len()))
            .collect()
    }

    /// Within-cluster sum of squared distances to the centre (the k-means
    /// objective), computed against `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` has a different number of rows than there are labels.
    pub fn inertia(&self, data: &Matrix) -> f64 {
        assert_eq!(data.rows(), self.labels.len(), "data/labels mismatch");
        self.labels
            .iter()
            .enumerate()
            .map(|(i, &l)| sls_linalg::squared_euclidean_distance(data.row(i), self.centers.row(l)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 2.0],
            vec![10.0, 10.0],
            vec![10.0, 12.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_labels_computes_mean_centres() {
        let a = ClusterAssignment::from_labels(vec![0, 0, 1, 1], &data(), "test");
        assert_eq!(a.n_clusters(), 2);
        assert_eq!(a.centers().row(0), &[0.0, 1.0]);
        assert_eq!(a.centers().row(1), &[10.0, 11.0]);
        assert_eq!(a.algorithm(), "test");
    }

    #[test]
    fn from_labels_with_empty_cluster_keeps_zero_centre() {
        // Label 1 unused: cluster 1 exists (max label 2) but is empty.
        let a = ClusterAssignment::from_labels(vec![0, 0, 2, 2], &data(), "test");
        assert_eq!(a.n_clusters(), 3);
        assert_eq!(a.n_occupied_clusters(), 2);
        assert_eq!(a.centers().row(1), &[0.0, 0.0]);
    }

    #[test]
    fn members_and_sizes() {
        let a = ClusterAssignment::from_labels(vec![1, 0, 1, 1], &data(), "test");
        let members = a.members();
        assert_eq!(members[&0], vec![1]);
        assert_eq!(members[&1], vec![0, 2, 3]);
        assert_eq!(a.cluster_sizes()[&1], 3);
        assert_eq!(a.n_instances(), 4);
    }

    #[test]
    fn inertia_is_zero_for_singletons_at_centres() {
        let d = data();
        let a = ClusterAssignment::from_labels(vec![0, 1, 2, 3], &d, "test");
        assert!(a.inertia(&d) < 1e-12);
    }

    #[test]
    fn inertia_matches_hand_computation() {
        let d = data();
        let a = ClusterAssignment::from_labels(vec![0, 0, 1, 1], &d, "test");
        // Cluster 0 centre (0,1): distances^2 = 1 + 1; cluster 1 centre
        // (10,11): 1 + 1.
        assert!((a.inertia(&d) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn inertia_panics_on_shape_mismatch() {
        let a = ClusterAssignment::from_labels(vec![0, 0], &data().slice_rows(0, 2).unwrap(), "t");
        a.inertia(&data());
    }

    #[test]
    fn serde_round_trip() {
        let a = ClusterAssignment::from_labels(vec![0, 0, 1, 1], &data(), "test");
        let json = serde_json::to_string(&a).unwrap();
        let back: ClusterAssignment = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
