//! Error type for the clustering algorithms.

use std::fmt;

/// Errors raised by the clustering algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusteringError {
    /// The data matrix has no rows.
    EmptyData,
    /// More clusters were requested than there are instances.
    TooManyClusters {
        /// Requested number of clusters.
        requested: usize,
        /// Number of instances available.
        instances: usize,
    },
    /// A zero cluster count was requested.
    ZeroClusters,
    /// An invalid hyper-parameter value was supplied.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        message: String,
    },
    /// Propagated linear-algebra error.
    Linalg(sls_linalg::LinalgError),
}

impl fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringError::EmptyData => write!(f, "cannot cluster an empty data matrix"),
            ClusteringError::TooManyClusters {
                requested,
                instances,
            } => write!(
                f,
                "requested {requested} clusters but only {instances} instances are available"
            ),
            ClusteringError::ZeroClusters => write!(f, "the number of clusters must be at least 1"),
            ClusteringError::InvalidParameter { name, message } => {
                write!(f, "invalid value for parameter '{name}': {message}")
            }
            ClusteringError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for ClusteringError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusteringError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sls_linalg::LinalgError> for ClusteringError {
    fn from(e: sls_linalg::LinalgError) -> Self {
        ClusteringError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusteringError::EmptyData.to_string().contains("empty"));
        assert!(ClusteringError::TooManyClusters {
            requested: 5,
            instances: 3
        }
        .to_string()
        .contains("5 clusters"));
        assert!(ClusteringError::ZeroClusters
            .to_string()
            .contains("at least 1"));
        assert!(ClusteringError::InvalidParameter {
            name: "damping",
            message: "must be in [0.5, 1)".into()
        }
        .to_string()
        .contains("damping"));
    }

    #[test]
    fn linalg_conversion() {
        let e: ClusteringError = sls_linalg::LinalgError::Empty { op: "x" }.into();
        assert!(matches!(e, ClusteringError::Linalg(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
