//! Affinity propagation clustering (Frey & Dueck, *Science* 2007).
//!
//! The `AP` baseline of the paper. Affinity propagation exchanges two kinds
//! of messages between data points until a set of *exemplars* emerges:
//!
//! * responsibility `r(i, k)` — how well point `k` is suited to be the
//!   exemplar of point `i` compared with other candidates;
//! * availability `a(i, k)` — how appropriate it would be for point `i` to
//!   choose `k` as its exemplar given the support `k` receives from others.
//!
//! The number of clusters is governed indirectly by the *preference* (the
//! self-similarity `s(k, k)`). Since the paper always evaluates with the
//! ground-truth class count, [`AffinityPropagation::with_target_clusters`]
//! performs a bisection search over the preference to hit a requested
//! cluster count, falling back to the closest achievable count.

use crate::{ClusterAssignment, Clusterer, ClusteringError, Result};
use sls_linalg::{squared_euclidean_distance, Matrix, ParallelPolicy};

/// Configuration and entry point for affinity propagation.
#[derive(Debug, Clone)]
pub struct AffinityPropagation {
    damping: f64,
    max_iterations: usize,
    convergence_iterations: usize,
    preference: Option<f64>,
    target_clusters: Option<usize>,
    parallel: ParallelPolicy,
}

/// Detailed outcome of an affinity propagation run.
#[derive(Debug, Clone)]
pub struct AffinityPropagationOutcome {
    /// The final assignment.
    pub assignment: ClusterAssignment,
    /// Indices of the exemplar instances.
    pub exemplars: Vec<usize>,
    /// Number of message-passing iterations executed.
    pub iterations: usize,
    /// Whether the exemplar set was stable for `convergence_iterations`
    /// consecutive iterations.
    pub converged: bool,
    /// The preference value that produced this outcome.
    pub preference: f64,
}

impl Default for AffinityPropagation {
    fn default() -> Self {
        Self {
            damping: 0.7,
            max_iterations: 200,
            convergence_iterations: 15,
            preference: None,
            target_clusters: None,
            parallel: ParallelPolicy::serial(),
        }
    }
}

impl AffinityPropagation {
    /// Creates a clusterer with default damping (0.7) and the preference set
    /// to the median similarity (the authors' recommendation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the damping factor λ ∈ [0.5, 1).
    ///
    /// # Errors
    ///
    /// Returns [`ClusteringError::InvalidParameter`] when out of range.
    pub fn with_damping(mut self, damping: f64) -> Result<Self> {
        if !(0.5..1.0).contains(&damping) {
            return Err(ClusteringError::InvalidParameter {
                name: "damping",
                message: format!("must be in [0.5, 1), got {damping}"),
            });
        }
        self.damping = damping;
        Ok(self)
    }

    /// Sets the maximum number of message-passing iterations.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Fixes the preference (self-similarity) explicitly.
    pub fn with_preference(mut self, preference: f64) -> Self {
        self.preference = Some(preference);
        self
    }

    /// Requests a specific number of clusters; a bisection search over the
    /// preference tries to achieve it. This mirrors how the paper uses AP
    /// with the known class count.
    pub fn with_target_clusters(mut self, k: usize) -> Self {
        self.target_clusters = Some(k.max(1));
        self
    }

    /// Routes the similarity construction, responsibility updates and final
    /// exemplar assignment through the shared row kernels under `parallel`.
    ///
    /// Each of those steps is independent per row and keeps its serial
    /// accumulation order, so the result is bitwise identical to the serial
    /// run. The availability update writes column-wise and stays serial.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Runs affinity propagation and returns the detailed outcome.
    ///
    /// # Errors
    ///
    /// Returns [`ClusteringError::EmptyData`] for an empty matrix.
    pub fn fit(&self, data: &Matrix) -> Result<AffinityPropagationOutcome> {
        let n = data.rows();
        if n == 0 {
            return Err(ClusteringError::EmptyData);
        }
        if n == 1 {
            return Ok(AffinityPropagationOutcome {
                assignment: ClusterAssignment::from_labels(vec![0], data, "AP"),
                exemplars: vec![0],
                iterations: 0,
                converged: true,
                preference: 0.0,
            });
        }

        // Similarities: negative squared Euclidean distance. A tiny
        // deterministic jitter breaks the degenerate symmetries that make the
        // message-passing oscillate (Frey & Dueck add random noise for the
        // same reason; we keep it deterministic for reproducibility).
        // The similarity rows are independent, so they go through the pooled
        // row kernel; the diagonal stays zero until the preference is set.
        let mut similarities = data.map_rows_with(n, &self.parallel, |i, row, out| {
            for (j, slot) in out.iter_mut().enumerate() {
                if j != i {
                    *slot = -squared_euclidean_distance(row, data.row(j));
                }
            }
        });
        let max_abs = similarities
            .as_slice()
            .iter()
            .fold(0.0_f64, |m, &s| m.max(s.abs()));
        if max_abs == 0.0 {
            // Every instance is identical: a single cluster is the only
            // sensible answer and the message passing would be degenerate.
            return Ok(AffinityPropagationOutcome {
                assignment: ClusterAssignment::from_labels(vec![0; n], data, "AP"),
                exemplars: vec![0],
                iterations: 0,
                converged: true,
                preference: 0.0,
            });
        }
        let jitter_scale = 1e-6 * max_abs;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    similarities[(i, j)] += jitter_scale * deterministic_jitter(i, j);
                }
            }
        }
        let median = median_off_diagonal(&similarities);

        match (self.target_clusters, self.preference) {
            (Some(k), _) => self.fit_with_target(data, &similarities, median, k),
            (None, Some(p)) => self.fit_with_preference(data, &similarities, p),
            (None, None) => self.fit_with_preference(data, &similarities, median),
        }
    }

    /// Bisection search over the preference to hit `k` clusters. The
    /// preference is monotone in the cluster count (more negative ⇒ fewer
    /// exemplars), which makes bisection sound.
    fn fit_with_target(
        &self,
        data: &Matrix,
        similarities: &Matrix,
        median: f64,
        k: usize,
    ) -> Result<AffinityPropagationOutcome> {
        let n = data.rows();
        if k > n {
            return Err(ClusteringError::TooManyClusters {
                requested: k,
                instances: n,
            });
        }
        // Preference bounds: Frey & Dueck note that preferences below the
        // minimum similarity collapse to one cluster while preferences near
        // zero (the maximum, since similarities are negative) yield ~n
        // clusters. Staying within that range keeps the message passing in
        // its stable regime.
        let min_similarity = similarities
            .as_slice()
            .iter()
            .copied()
            .fold(0.0_f64, f64::min);
        let mut low = 2.0 * min_similarity - median.abs() - 1e-9; // few clusters
        let mut high = 0.0; // many clusters
        let mut best: Option<AffinityPropagationOutcome> = None;

        for _ in 0..24 {
            let mid = 0.5 * (low + high);
            let outcome = self.fit_with_preference(data, similarities, mid)?;
            let found = outcome.exemplars.len();
            let better = match &best {
                None => true,
                Some(b) => {
                    (found as isize - k as isize).abs()
                        < (b.exemplars.len() as isize - k as isize).abs()
                }
            };
            if better {
                best = Some(outcome);
            }
            match found.cmp(&k) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Less => low = mid,
                std::cmp::Ordering::Greater => high = mid,
            }
        }
        Ok(best.expect("at least one bisection iteration"))
    }

    /// One affinity propagation run with a fixed preference.
    fn fit_with_preference(
        &self,
        data: &Matrix,
        similarities: &Matrix,
        preference: f64,
    ) -> Result<AffinityPropagationOutcome> {
        let n = data.rows();
        let mut s = similarities.clone();
        for i in 0..n {
            s[(i, i)] = preference;
        }

        let mut responsibility = Matrix::zeros(n, n);
        let mut availability = Matrix::zeros(n, n);
        let lambda = self.damping;
        let mut last_exemplars: Vec<usize> = Vec::new();
        let mut stable_for = 0usize;
        let mut iterations = 0usize;
        let mut converged = false;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Responsibility update:
            // r(i,k) <- s(i,k) - max_{k' != k} { a(i,k') + s(i,k') }
            // Each row depends only on the same row of `s`, `availability`
            // and the previous `responsibility`, so the rows fan out across
            // the pool and are damped with identical arithmetic.
            responsibility = s.map_rows_with(n, &self.parallel, |i, s_row, out| {
                let a_row = availability.row(i);
                let r_row = responsibility.row(i);
                // Find the largest and second largest a+s over k'.
                let mut max1 = f64::NEG_INFINITY;
                let mut max2 = f64::NEG_INFINITY;
                let mut argmax1 = 0usize;
                for (k, (&a, &sv)) in a_row.iter().zip(s_row).enumerate() {
                    let v = a + sv;
                    if v > max1 {
                        max2 = max1;
                        max1 = v;
                        argmax1 = k;
                    } else if v > max2 {
                        max2 = v;
                    }
                }
                for (k, slot) in out.iter_mut().enumerate() {
                    let competitor = if k == argmax1 { max2 } else { max1 };
                    let new_r = s_row[k] - competitor;
                    *slot = lambda * r_row[k] + (1.0 - lambda) * new_r;
                }
            });

            // Availability update:
            // a(i,k) <- min(0, r(k,k) + sum_{i' not in {i,k}} max(0, r(i',k)))
            // a(k,k) <- sum_{i' != k} max(0, r(i',k))
            // This one is column-oriented (every output column k reduces over
            // the whole of responsibility's column k), so a row split would
            // not help; it stays serial.
            for k in 0..n {
                let positive_sum: f64 = (0..n)
                    .filter(|&i| i != k)
                    .map(|i| responsibility[(i, k)].max(0.0))
                    .sum();
                for i in 0..n {
                    let new_a = if i == k {
                        positive_sum
                    } else {
                        let adjusted =
                            positive_sum - responsibility[(i, k)].max(0.0) + responsibility[(k, k)];
                        adjusted.min(0.0)
                    };
                    availability[(i, k)] = lambda * availability[(i, k)] + (1.0 - lambda) * new_a;
                }
            }

            // Current exemplars: points where r(k,k) + a(k,k) > 0.
            let exemplars: Vec<usize> = (0..n)
                .filter(|&k| responsibility[(k, k)] + availability[(k, k)] > 0.0)
                .collect();
            if !exemplars.is_empty() && exemplars == last_exemplars {
                stable_for += 1;
                if stable_for >= self.convergence_iterations {
                    converged = true;
                    break;
                }
            } else {
                stable_for = 0;
                last_exemplars = exemplars;
            }
        }

        // Final exemplar set; fall back to the single point with the highest
        // self-evidence if none crossed zero.
        let mut exemplars: Vec<usize> = (0..n)
            .filter(|&k| responsibility[(k, k)] + availability[(k, k)] > 0.0)
            .collect();
        if exemplars.is_empty() {
            let best = (0..n)
                .max_by(|&a, &b| {
                    (responsibility[(a, a)] + availability[(a, a)])
                        .partial_cmp(&(responsibility[(b, b)] + availability[(b, b)]))
                        .expect("finite evidence")
                })
                .expect("n >= 1");
            exemplars.push(best);
        }

        // Assign every point to its most similar exemplar; exemplars assign
        // to themselves. Exemplar positions fit in f64 exactly, so routing
        // the row scan through the pooled kernel is lossless.
        let labels: Vec<usize> = s
            .reduce_rows_with(&self.parallel, |i, s_row| {
                if let Some(pos) = exemplars.iter().position(|&e| e == i) {
                    return pos as f64;
                }
                let mut best_pos = 0usize;
                let mut best_sim = f64::NEG_INFINITY;
                for (pos, &e) in exemplars.iter().enumerate() {
                    if s_row[e] > best_sim {
                        best_sim = s_row[e];
                        best_pos = pos;
                    }
                }
                best_pos as f64
            })
            .into_iter()
            .map(|x| x as usize)
            .collect();

        let assignment = ClusterAssignment::from_labels(labels, data, "AP");
        Ok(AffinityPropagationOutcome {
            assignment,
            exemplars,
            iterations,
            converged,
            preference,
        })
    }
}

/// Deterministic pseudo-random value in `(0, 1)` derived from the pair of
/// indices, used to de-symmetrise the similarity matrix.
fn deterministic_jitter(i: usize, j: usize) -> f64 {
    let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x % 1_000_000) as f64 / 1_000_000.0
}

/// Median of the off-diagonal entries of a square matrix.
fn median_off_diagonal(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut values: Vec<f64> = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                values.push(m[(i, j)]);
            }
        }
    }
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite similarities"));
    values[values.len() / 2]
}

impl Clusterer for AffinityPropagation {
    fn name(&self) -> &'static str {
        "AP"
    }

    fn cluster(&self, data: &Matrix, _rng: &mut dyn rand::RngCore) -> Result<ClusterAssignment> {
        Ok(self.fit(data)?.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    #[test]
    fn rejects_empty_data_and_bad_damping() {
        assert!(matches!(
            AffinityPropagation::default().fit(&Matrix::zeros(0, 2)),
            Err(ClusteringError::EmptyData)
        ));
        assert!(AffinityPropagation::default().with_damping(0.3).is_err());
        assert!(AffinityPropagation::default().with_damping(1.0).is_err());
        assert!(AffinityPropagation::default().with_damping(0.9).is_ok());
    }

    #[test]
    fn single_point_is_its_own_cluster() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let outcome = AffinityPropagation::default().fit(&data).unwrap();
        assert_eq!(outcome.assignment.labels(), &[0]);
        assert_eq!(outcome.exemplars, vec![0]);
    }

    #[test]
    fn recovers_two_obvious_clusters_with_median_preference() {
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![8.0, 8.0],
            vec![8.2, 8.1],
            vec![8.1, 8.2],
        ])
        .unwrap();
        let outcome = AffinityPropagation::default().fit(&data).unwrap();
        let l = outcome.assignment.labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_eq!(l[4], l[5]);
        assert_ne!(l[0], l[3]);
    }

    #[test]
    fn target_cluster_count_is_reached_on_separable_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let ds = SyntheticBlobs::new(75, 4, 3)
            .separation(8.0)
            .generate(&mut rng);
        let outcome = AffinityPropagation::default()
            .with_target_clusters(3)
            .fit(ds.features())
            .unwrap();
        assert_eq!(outcome.exemplars.len(), 3);
        let acc =
            sls_metrics::clustering_accuracy(outcome.assignment.labels(), ds.labels()).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn target_cluster_count_errors_when_impossible() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            AffinityPropagation::default()
                .with_target_clusters(5)
                .fit(&data),
            Err(ClusteringError::TooManyClusters { .. })
        ));
    }

    #[test]
    fn preference_below_minimum_similarity_gives_few_clusters() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let ds = SyntheticBlobs::new(40, 3, 2)
            .separation(5.0)
            .generate(&mut rng);
        // A preference below the minimum pairwise similarity is the
        // documented way to push AP towards very few clusters.
        let min_sim = {
            let d = sls_linalg::pairwise_distances(ds.features());
            -(d.max().unwrap() * d.max().unwrap())
        };
        let outcome = AffinityPropagation::default()
            .with_preference(2.0 * min_sim)
            .fit(ds.features())
            .unwrap();
        assert!(
            outcome.exemplars.len() <= 2,
            "{} exemplars",
            outcome.exemplars.len()
        );
    }

    #[test]
    fn exemplars_label_themselves() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let ds = SyntheticBlobs::new(30, 3, 3)
            .separation(6.0)
            .generate(&mut rng);
        let outcome = AffinityPropagation::default()
            .with_target_clusters(3)
            .fit(ds.features())
            .unwrap();
        for (pos, &e) in outcome.exemplars.iter().enumerate() {
            assert_eq!(outcome.assignment.labels()[e], pos);
        }
    }

    #[test]
    fn deterministic_regardless_of_rng() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let ds = SyntheticBlobs::new(40, 3, 2)
            .separation(5.0)
            .generate(&mut rng);
        let ap = AffinityPropagation::default().with_target_clusters(2);
        let mut rng_a = ChaCha8Rng::seed_from_u64(0);
        let mut rng_b = ChaCha8Rng::seed_from_u64(1);
        let a = ap.cluster(ds.features(), &mut rng_a).unwrap();
        let b = ap.cluster(ds.features(), &mut rng_b).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn parallel_fit_is_identical_to_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let ds = SyntheticBlobs::new(60, 4, 3)
            .separation(4.0)
            .generate(&mut rng);
        let serial = AffinityPropagation::default()
            .with_target_clusters(3)
            .fit(ds.features())
            .unwrap();
        for threads in [2, 4, 8] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool);
                let parallel = AffinityPropagation::default()
                    .with_target_clusters(3)
                    .with_parallel(policy)
                    .fit(ds.features())
                    .unwrap();
                assert_eq!(serial.assignment.labels(), parallel.assignment.labels());
                assert_eq!(serial.exemplars, parallel.exemplars);
                assert_eq!(serial.iterations, parallel.iterations);
                assert_eq!(
                    serial.preference.to_bits(),
                    parallel.preference.to_bits(),
                    "bisection must follow the same trajectory"
                );
            }
        }
    }

    #[test]
    fn identical_points_collapse_to_one_cluster() {
        let data = Matrix::from_rows(&vec![vec![2.0, 2.0]; 5]).unwrap();
        let outcome = AffinityPropagation::default().fit(&data).unwrap();
        assert_eq!(outcome.assignment.n_occupied_clusters(), 1);
    }
}
