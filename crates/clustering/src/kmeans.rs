//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! This is the `K-means` baseline of Tables IV–IX and one of the three base
//! clusterers feeding the self-learning local supervision. The paper cites
//! Lloyd (1982); we add k-means++ seeding and multiple restarts because the
//! paper reports averaged results with variances, implying repeated runs.

use crate::{ClusterAssignment, Clusterer, ClusteringError, Result};
use rand::Rng;
use sls_linalg::{squared_euclidean_distance, Matrix, ParallelPolicy};

/// Configuration and entry point for k-means.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    tolerance: f64,
    restarts: usize,
    parallel: ParallelPolicy,
}

/// Detailed outcome of a k-means run (the best restart).
#[derive(Debug, Clone)]
pub struct KMeansOutcome {
    /// The final assignment.
    pub assignment: ClusterAssignment,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Number of Lloyd iterations executed by the best restart.
    pub iterations: usize,
    /// Whether the best restart converged (centre shift below tolerance)
    /// before hitting the iteration cap.
    pub converged: bool,
}

impl KMeans {
    /// Creates a k-means clusterer targeting `k` clusters with default
    /// hyper-parameters (100 iterations, tolerance `1e-6`, 4 restarts).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            tolerance: 1e-6,
            restarts: 4,
            parallel: ParallelPolicy::serial(),
        }
    }

    /// Sets the maximum number of Lloyd iterations per restart.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Sets the convergence tolerance on the total centre shift.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Sets the number of random restarts; the restart with the lowest
    /// inertia wins.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Routes the per-instance distance scans (assignment step and k-means++
    /// seeding) through the shared row kernels under `parallel`.
    ///
    /// Every random draw stays on the caller's thread and the per-row work is
    /// read-only, so the result is bitwise identical to the serial run.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Validates the `(k, data)` combination every entry point must hold
    /// before any seeding code runs: k-means++ would panic on an empty range
    /// (`gen_range(0..0)`) for empty data, and `k > n` would silently seed
    /// duplicate centres.
    ///
    /// # Errors
    ///
    /// * [`ClusteringError::EmptyData`] if `data` has no rows.
    /// * [`ClusteringError::ZeroClusters`] if `k == 0`.
    /// * [`ClusteringError::TooManyClusters`] if `k > data.rows()`.
    fn validate(&self, data: &Matrix) -> Result<()> {
        if data.rows() == 0 {
            return Err(ClusteringError::EmptyData);
        }
        if self.k == 0 {
            return Err(ClusteringError::ZeroClusters);
        }
        if self.k > data.rows() {
            return Err(ClusteringError::TooManyClusters {
                requested: self.k,
                instances: data.rows(),
            });
        }
        Ok(())
    }

    /// Runs k-means and returns the detailed outcome of the best restart.
    ///
    /// # Errors
    ///
    /// * [`ClusteringError::EmptyData`] if `data` has no rows.
    /// * [`ClusteringError::ZeroClusters`] if `k == 0`.
    /// * [`ClusteringError::TooManyClusters`] if `k > data.rows()`.
    pub fn fit(&self, data: &Matrix, rng: &mut impl Rng) -> Result<KMeansOutcome> {
        self.validate(data)?;
        let mut best: Option<KMeansOutcome> = None;
        for _ in 0..self.restarts {
            let outcome = self.fit_once(data, rng)?;
            let better = match &best {
                None => true,
                Some(b) => outcome.inertia < b.inertia,
            };
            if better {
                best = Some(outcome);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    /// One restart: k-means++ seeding followed by Lloyd iterations.
    ///
    /// Re-checks [`KMeans::validate`] so a future entry point cannot reach
    /// the seeding code with a panicking or degenerate `(k, data)` pair.
    fn fit_once(&self, data: &Matrix, rng: &mut impl Rng) -> Result<KMeansOutcome> {
        self.validate(data)?;
        let mut centers = self.kmeans_plus_plus_init(data, rng);
        let n = data.rows();
        let mut labels = vec![0usize; n];
        let mut converged = false;
        let mut iterations = 0;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            self.assign_labels(data, &centers, &mut labels);
            // Update step: the scatter accumulates in label order, which a
            // row-parallel split would reorder, so it stays serial.
            let mut new_centers = Matrix::zeros(self.k, data.cols());
            let mut counts = vec![0usize; self.k];
            for (i, &l) in labels.iter().enumerate() {
                counts[l] += 1;
                let row = data.row(i);
                let c = new_centers.row_mut(l);
                for (cj, &xj) in c.iter_mut().zip(row) {
                    *cj += xj;
                }
            }
            for (l, &count) in counts.iter().enumerate().take(self.k) {
                if count == 0 {
                    // Re-seed an empty cluster at a random data point so k is
                    // preserved (standard empty-cluster handling).
                    let i = rng.gen_range(0..n);
                    new_centers.row_mut(l).copy_from_slice(data.row(i));
                } else {
                    let c = new_centers.row_mut(l);
                    for cj in c.iter_mut() {
                        *cj /= count as f64;
                    }
                }
            }
            // Convergence check on total centre movement.
            let shift: f64 = (0..self.k)
                .map(|l| squared_euclidean_distance(centers.row(l), new_centers.row(l)))
                .sum();
            centers = new_centers;
            if shift <= self.tolerance {
                converged = true;
                break;
            }
        }

        // Final assignment against the final centres.
        self.assign_labels(data, &centers, &mut labels);
        let assignment = ClusterAssignment::new(labels, centers, "K-means");
        let inertia = assignment.inertia(data);
        Ok(KMeansOutcome {
            assignment,
            inertia,
            iterations,
            converged,
        })
    }

    /// Assigns every instance to its nearest centre through the pooled row
    /// kernel. Cluster indices round-trip through `f64` losslessly
    /// (`k <= n` is far below 2^53).
    fn assign_labels(&self, data: &Matrix, centers: &Matrix, labels: &mut [usize]) {
        let nearest = data.reduce_rows_with(&self.parallel, |_, row| {
            centers
                .nearest_row(row)
                .expect("centers is non-empty because k >= 1") as f64
        });
        for (label, &idx) in labels.iter_mut().zip(&nearest) {
            *label = idx as usize;
        }
    }

    /// k-means++ seeding: the first centre is uniform, subsequent centres are
    /// sampled proportionally to the squared distance to the nearest chosen
    /// centre.
    ///
    /// The distance scans are row-parallel; the sampling draws between them
    /// happen on the caller's thread in a fixed order, so the sequence of RNG
    /// consumptions — and therefore the seeding — is independent of the
    /// parallel policy.
    fn kmeans_plus_plus_init(&self, data: &Matrix, rng: &mut impl Rng) -> Matrix {
        let n = data.rows();
        let mut centers = Matrix::zeros(self.k, data.cols());
        let first = rng.gen_range(0..n);
        centers.row_mut(0).copy_from_slice(data.row(first));

        let mut min_dists = data.reduce_rows_with(&self.parallel, |_, row| {
            squared_euclidean_distance(row, centers.row(0))
        });

        for c in 1..self.k {
            let total: f64 = min_dists.iter().sum();
            let chosen = if total <= f64::EPSILON {
                // All points coincide with existing centres; pick uniformly.
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut idx = n - 1;
                for (i, &d) in min_dists.iter().enumerate() {
                    if target < d {
                        idx = i;
                        break;
                    }
                    target -= d;
                }
                idx
            };
            centers.row_mut(c).copy_from_slice(data.row(chosen));
            let center = centers.row(c);
            min_dists = data.reduce_rows_with(&self.parallel, |i, row| {
                let d = squared_euclidean_distance(row, center);
                if d < min_dists[i] {
                    d
                } else {
                    min_dists[i]
                }
            });
        }
        centers
    }
}

impl Clusterer for KMeans {
    fn name(&self) -> &'static str {
        "K-means"
    }

    fn cluster(&self, data: &Matrix, mut rng: &mut dyn rand::RngCore) -> Result<ClusterAssignment> {
        Ok(self.fit(data, &mut rng)?.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(21)
    }

    #[test]
    fn rejects_invalid_inputs() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            KMeans::new(0).fit(&data, &mut rng()),
            Err(ClusteringError::ZeroClusters)
        ));
        assert!(matches!(
            KMeans::new(3).fit(&data, &mut rng()),
            Err(ClusteringError::TooManyClusters { .. })
        ));
        assert!(matches!(
            KMeans::new(1).fit(&Matrix::zeros(0, 2), &mut rng()),
            Err(ClusteringError::EmptyData)
        ));
    }

    #[test]
    fn trait_path_rejects_invalid_inputs_instead_of_panicking() {
        // The supervision builder reaches k-means through `dyn Clusterer`,
        // so degenerate inputs must surface as errors on that path too:
        // empty data would otherwise panic inside k-means++ seeding
        // (`gen_range(0..0)`), and `k > n` would seed duplicate centres.
        let mut r = rng();
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let empty = Matrix::zeros(0, 2);
        let cases: Vec<(Box<dyn Clusterer>, &Matrix, ClusteringError)> = vec![
            (Box::new(KMeans::new(1)), &empty, ClusteringError::EmptyData),
            (
                Box::new(KMeans::new(0)),
                &data,
                ClusteringError::ZeroClusters,
            ),
            (
                Box::new(KMeans::new(5)),
                &data,
                ClusteringError::TooManyClusters {
                    requested: 5,
                    instances: 2,
                },
            ),
        ];
        for (clusterer, input, expected) in cases {
            assert_eq!(clusterer.cluster(input, &mut r).unwrap_err(), expected);
        }
    }

    #[test]
    fn recovers_two_obvious_clusters() {
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.2],
            vec![0.2, 0.1],
            vec![9.0, 9.0],
            vec![9.1, 8.9],
            vec![8.9, 9.2],
        ])
        .unwrap();
        let outcome = KMeans::new(2).fit(&data, &mut rng()).unwrap();
        let l = outcome.assignment.labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_eq!(l[4], l[5]);
        assert_ne!(l[0], l[3]);
        assert!(outcome.converged);
        assert!(outcome.inertia < 1.0);
    }

    #[test]
    fn k_equal_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![10.0]]).unwrap();
        let outcome = KMeans::new(3).fit(&data, &mut rng()).unwrap();
        assert!(outcome.inertia < 1e-12);
        assert_eq!(outcome.assignment.n_occupied_clusters(), 3);
    }

    #[test]
    fn single_cluster_centre_is_global_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0], vec![4.0, 8.0]]).unwrap();
        let outcome = KMeans::new(1).fit(&data, &mut rng()).unwrap();
        assert_eq!(outcome.assignment.centers().row(0), &[2.0, 4.0]);
        assert!(outcome.assignment.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn high_separation_blobs_recovered_accurately() {
        let ds = SyntheticBlobs::new(120, 6, 3)
            .separation(8.0)
            .generate(&mut rng());
        let outcome = KMeans::new(3).fit(ds.features(), &mut rng()).unwrap();
        let acc =
            sls_metrics::clustering_accuracy(outcome.assignment.labels(), ds.labels()).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn more_restarts_never_increase_inertia() {
        let ds = SyntheticBlobs::new(80, 4, 4)
            .separation(3.0)
            .generate(&mut rng());
        let one = KMeans::new(4)
            .with_restarts(1)
            .fit(ds.features(), &mut rng())
            .unwrap();
        let many = KMeans::new(4)
            .with_restarts(8)
            .fit(ds.features(), &mut rng())
            .unwrap();
        assert!(many.inertia <= one.inertia + 1e-9);
    }

    #[test]
    fn duplicate_points_do_not_break_seeding() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 10]).unwrap();
        let outcome = KMeans::new(3).fit(&data, &mut rng()).unwrap();
        assert_eq!(outcome.assignment.labels().len(), 10);
        assert!(outcome.inertia < 1e-12);
    }

    #[test]
    fn trait_object_usage_works() {
        let ds = SyntheticBlobs::new(30, 3, 2)
            .separation(6.0)
            .generate(&mut rng());
        let clusterer: Box<dyn Clusterer> = Box::new(KMeans::new(2));
        let a = clusterer.cluster(ds.features(), &mut rng()).unwrap();
        assert_eq!(a.n_instances(), 30);
        assert_eq!(clusterer.name(), "K-means");
    }

    #[test]
    fn parallel_assignment_is_identical_to_serial() {
        let ds = SyntheticBlobs::new(70, 5, 3)
            .separation(2.0)
            .generate(&mut rng());
        let serial = KMeans::new(3).fit(ds.features(), &mut rng()).unwrap();
        for threads in [2, 4, 8] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool);
                let parallel = KMeans::new(3)
                    .with_parallel(policy)
                    .fit(ds.features(), &mut rng())
                    .unwrap();
                assert_eq!(serial.assignment.labels(), parallel.assignment.labels());
                assert_eq!(
                    serial.assignment.centers().as_slice(),
                    parallel.assignment.centers().as_slice()
                );
                assert_eq!(serial.inertia.to_bits(), parallel.inertia.to_bits());
            }
        }
    }

    #[test]
    fn iterations_respect_cap() {
        let ds = SyntheticBlobs::new(60, 4, 3)
            .separation(1.0)
            .generate(&mut rng());
        let outcome = KMeans::new(3)
            .with_max_iterations(2)
            .with_restarts(1)
            .fit(ds.features(), &mut rng())
            .unwrap();
        assert!(outcome.iterations <= 2);
    }
}
