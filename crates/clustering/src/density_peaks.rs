//! Density peaks clustering (Rodriguez & Laio, *Science* 2014).
//!
//! This is the `DP` algorithm of the paper's experiments — its strongest
//! conventional baseline. The algorithm:
//!
//! 1. computes the pairwise distance matrix and a cutoff distance `d_c`
//!    chosen so that a small fraction of all pairs are "neighbours";
//! 2. assigns every point a local density `ρ_i` (Gaussian kernel over the
//!    cutoff) and a separation `δ_i` — the distance to the nearest point of
//!    higher density (the densest point gets the largest distance overall);
//! 3. selects the `k` points with the largest `γ_i = ρ_i · δ_i` as cluster
//!    centres;
//! 4. assigns the remaining points, in order of decreasing density, to the
//!    cluster of their nearest higher-density neighbour.

use crate::{ClusterAssignment, Clusterer, ClusteringError, Result};
use sls_linalg::{pairwise_distances_with, Matrix, ParallelPolicy};

/// Configuration and entry point for density peaks clustering.
#[derive(Debug, Clone)]
pub struct DensityPeaks {
    k: usize,
    neighbor_fraction: f64,
    gaussian_kernel: bool,
    parallel: ParallelPolicy,
}

/// Detailed outcome of a density peaks run.
#[derive(Debug, Clone)]
pub struct DensityPeaksOutcome {
    /// The final assignment.
    pub assignment: ClusterAssignment,
    /// Local density `ρ` of every instance.
    pub densities: Vec<f64>,
    /// Separation `δ` of every instance.
    pub separations: Vec<f64>,
    /// Indices of the instances chosen as cluster centres.
    pub center_indices: Vec<usize>,
    /// Cutoff distance `d_c` used for the density estimate.
    pub cutoff_distance: f64,
}

impl DensityPeaks {
    /// Creates a density peaks clusterer that extracts `k` clusters, using a
    /// Gaussian kernel density with the customary 2% neighbour fraction.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            neighbor_fraction: 0.02,
            gaussian_kernel: true,
            parallel: ParallelPolicy::serial(),
        }
    }

    /// Sets the fraction of pairwise distances used to pick the cutoff
    /// distance `d_c` (the paper's rule of thumb is 1–2%).
    ///
    /// Values are clamped to `(0, 1]`.
    pub fn with_neighbor_fraction(mut self, fraction: f64) -> Self {
        self.neighbor_fraction = fraction.clamp(f64::EPSILON, 1.0);
        self
    }

    /// Chooses between the Gaussian kernel density (default, smoother) and
    /// the original hard cutoff counter.
    pub fn with_gaussian_kernel(mut self, gaussian: bool) -> Self {
        self.gaussian_kernel = gaussian;
        self
    }

    /// Routes the distance matrix, density and separation scans through the
    /// shared row kernels under `parallel`.
    ///
    /// The per-row reductions keep their serial accumulation order, so the
    /// result is bitwise identical to the serial run. The cutoff quantile and
    /// the density-ordered label propagation are inherently sequential and
    /// stay serial.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Runs the algorithm and returns the detailed outcome.
    ///
    /// # Errors
    ///
    /// * [`ClusteringError::EmptyData`] if `data` has no rows.
    /// * [`ClusteringError::ZeroClusters`] if `k == 0`.
    /// * [`ClusteringError::TooManyClusters`] if `k > data.rows()`.
    pub fn fit(&self, data: &Matrix) -> Result<DensityPeaksOutcome> {
        let n = data.rows();
        if n == 0 {
            return Err(ClusteringError::EmptyData);
        }
        if self.k == 0 {
            return Err(ClusteringError::ZeroClusters);
        }
        if self.k > n {
            return Err(ClusteringError::TooManyClusters {
                requested: self.k,
                instances: n,
            });
        }

        let distances = pairwise_distances_with(data, &self.parallel);
        let cutoff = self.cutoff_distance(&distances);
        let densities = self.local_densities(&distances, cutoff);
        let (separations, nearest_higher) = separations(&distances, &densities, &self.parallel);

        // γ = ρ * δ ranks centre candidates.
        let mut gamma: Vec<(usize, f64)> = densities
            .iter()
            .zip(&separations)
            .map(|(&rho, &delta)| rho * delta)
            .enumerate()
            .collect();
        gamma.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("gamma is finite"));
        let center_indices: Vec<usize> = gamma.iter().take(self.k).map(|&(i, _)| i).collect();

        // Assign centres their own cluster ids.
        let mut labels = vec![usize::MAX; n];
        for (cluster, &idx) in center_indices.iter().enumerate() {
            labels[idx] = cluster;
        }

        // Remaining points inherit the label of their nearest higher-density
        // neighbour, processed in order of decreasing density so the parent
        // is always labelled first.
        let mut density_order: Vec<usize> = (0..n).collect();
        density_order.sort_by(|&a, &b| {
            densities[b]
                .partial_cmp(&densities[a])
                .expect("densities are finite")
        });
        for &i in &density_order {
            if labels[i] == usize::MAX {
                let parent = nearest_higher[i].expect("non-centre points have a parent");
                labels[i] = labels[parent];
            }
        }
        debug_assert!(labels.iter().all(|&l| l != usize::MAX));

        let assignment = ClusterAssignment::from_labels(labels, data, "DP");
        Ok(DensityPeaksOutcome {
            assignment,
            densities,
            separations,
            center_indices,
            cutoff_distance: cutoff,
        })
    }

    /// The cutoff distance is the `neighbor_fraction` quantile of all
    /// pairwise distances (excluding the diagonal).
    fn cutoff_distance(&self, distances: &Matrix) -> f64 {
        let n = distances.rows();
        if n <= 1 {
            return 0.0;
        }
        let mut all: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                all.push(distances[(i, j)]);
            }
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        let pos = ((all.len() as f64) * self.neighbor_fraction).ceil() as usize;
        let idx = pos.clamp(1, all.len()) - 1;
        // A zero cutoff (many duplicate points) would collapse the Gaussian
        // kernel; fall back to the smallest positive distance or 1.0.
        let d = all[idx];
        if d > 0.0 {
            d
        } else {
            all.iter().copied().find(|&x| x > 0.0).unwrap_or(1.0)
        }
    }

    /// Each `ρ_i` sums the kernel over row `i` of the distance matrix in
    /// index order — the same order as the serial loop — so the parallel
    /// result is bitwise identical.
    fn local_densities(&self, distances: &Matrix, cutoff: f64) -> Vec<f64> {
        distances.reduce_rows_with(&self.parallel, |i, drow| {
            drow.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &d)| {
                    if self.gaussian_kernel {
                        (-(d / cutoff) * (d / cutoff)).exp()
                    } else if d < cutoff {
                        1.0
                    } else {
                        0.0
                    }
                })
                .sum()
        })
    }
}

/// For every point: the distance to the nearest point of strictly higher
/// density (ties broken by index), and that point's index. The globally
/// densest point gets the maximum distance to any point and no parent.
///
/// Each point's scan is independent, so the rows go through the pooled row
/// kernel; `(δ_i, parent_i)` is packed into a two-column matrix with the
/// parent index as `f64` (−1 for "no parent"), which round-trips losslessly
/// for any realistic `n`.
fn separations(
    distances: &Matrix,
    densities: &[f64],
    parallel: &ParallelPolicy,
) -> (Vec<f64>, Vec<Option<usize>>) {
    let n = densities.len();
    let packed = distances.map_rows_with(2, parallel, |i, drow, out| {
        let mut best: Option<(usize, f64)> = None;
        for (j, &d) in drow.iter().enumerate() {
            if j == i {
                continue;
            }
            let higher = densities[j] > densities[i] || (densities[j] == densities[i] && j < i);
            if higher && best.map_or(true, |(_, bd)| d < bd) {
                best = Some((j, d));
            }
        }
        match best {
            Some((j, d)) => {
                out[0] = d;
                out[1] = j as f64;
            }
            None => {
                // Densest point overall: δ is its largest distance to anyone.
                out[0] = drow
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &d)| d)
                    .fold(0.0, f64::max);
                out[1] = -1.0;
            }
        }
    });
    let mut deltas = vec![0.0; n];
    let mut parents = vec![None; n];
    for i in 0..n {
        deltas[i] = packed[(i, 0)];
        if packed[(i, 1)] >= 0.0 {
            parents[i] = Some(packed[(i, 1)] as usize);
        }
    }
    (deltas, parents)
}

impl Clusterer for DensityPeaks {
    fn name(&self) -> &'static str {
        "DP"
    }

    fn cluster(&self, data: &Matrix, _rng: &mut dyn rand::RngCore) -> Result<ClusterAssignment> {
        Ok(self.fit(data)?.assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sls_datasets::SyntheticBlobs;

    #[test]
    fn rejects_invalid_inputs() {
        let data = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            DensityPeaks::new(0).fit(&data),
            Err(ClusteringError::ZeroClusters)
        ));
        assert!(matches!(
            DensityPeaks::new(5).fit(&data),
            Err(ClusteringError::TooManyClusters { .. })
        ));
        assert!(matches!(
            DensityPeaks::new(1).fit(&Matrix::zeros(0, 1)),
            Err(ClusteringError::EmptyData)
        ));
    }

    #[test]
    fn recovers_two_obvious_clusters() {
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.3, 0.1],
            vec![0.1, 0.3],
            vec![0.2, 0.2],
            vec![10.0, 10.0],
            vec![10.2, 10.1],
            vec![9.8, 10.2],
            vec![10.1, 9.9],
        ])
        .unwrap();
        let outcome = DensityPeaks::new(2).fit(&data).unwrap();
        let l = outcome.assignment.labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[2], l[3]);
        assert_eq!(l[4], l[5]);
        assert_eq!(l[6], l[7]);
        assert_ne!(l[0], l[4]);
        assert_eq!(outcome.center_indices.len(), 2);
    }

    #[test]
    fn densest_point_has_largest_separation() {
        let data =
            Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![0.15], vec![5.0]]).unwrap();
        let outcome = DensityPeaks::new(2).fit(&data).unwrap();
        // The densest point is inside the tight group; its separation must be
        // the largest distance from it (to the outlier at 5.0).
        let densest = outcome
            .densities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let max_sep = outcome
            .separations
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(outcome.separations[densest], max_sep);
    }

    #[test]
    fn all_labels_assigned_and_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ds = SyntheticBlobs::new(100, 4, 3)
            .separation(3.0)
            .generate(&mut rng);
        let outcome = DensityPeaks::new(3).fit(ds.features()).unwrap();
        assert_eq!(outcome.assignment.labels().len(), 100);
        assert!(outcome.assignment.labels().iter().all(|&l| l < 3));
        assert_eq!(outcome.assignment.n_occupied_clusters(), 3);
    }

    #[test]
    fn separated_blobs_recovered_accurately() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let ds = SyntheticBlobs::new(120, 6, 3)
            .separation(8.0)
            .generate(&mut rng);
        let outcome = DensityPeaks::new(3).fit(ds.features()).unwrap();
        let acc =
            sls_metrics::clustering_accuracy(outcome.assignment.labels(), ds.labels()).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic_regardless_of_rng() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(1);
        let mut rng_b = ChaCha8Rng::seed_from_u64(2);
        let ds = SyntheticBlobs::new(60, 4, 3)
            .separation(5.0)
            .generate(&mut rng_a);
        let dp = DensityPeaks::new(3);
        let a = dp.cluster(ds.features(), &mut rng_a).unwrap();
        let b = dp.cluster(ds.features(), &mut rng_b).unwrap();
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn parallel_fit_is_identical_to_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let ds = SyntheticBlobs::new(80, 4, 3)
            .separation(3.0)
            .generate(&mut rng);
        let serial = DensityPeaks::new(3).fit(ds.features()).unwrap();
        for threads in [2, 4, 8] {
            for pool in [false, true] {
                let policy = ParallelPolicy::new(threads)
                    .with_min_rows_per_thread(1)
                    .with_pool(pool);
                let parallel = DensityPeaks::new(3)
                    .with_parallel(policy)
                    .fit(ds.features())
                    .unwrap();
                assert_eq!(serial.assignment.labels(), parallel.assignment.labels());
                assert_eq!(serial.center_indices, parallel.center_indices);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&serial.densities), bits(&parallel.densities));
                assert_eq!(bits(&serial.separations), bits(&parallel.separations));
            }
        }
    }

    #[test]
    fn hard_cutoff_kernel_also_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let ds = SyntheticBlobs::new(90, 4, 3)
            .separation(7.0)
            .generate(&mut rng);
        let outcome = DensityPeaks::new(3)
            .with_gaussian_kernel(false)
            .with_neighbor_fraction(0.05)
            .fit(ds.features())
            .unwrap();
        let acc =
            sls_metrics::clustering_accuracy(outcome.assignment.labels(), ds.labels()).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn duplicate_points_do_not_panic() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 6]).unwrap();
        let outcome = DensityPeaks::new(2).fit(&data).unwrap();
        assert_eq!(outcome.assignment.labels().len(), 6);
    }

    #[test]
    fn cutoff_distance_is_positive() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let ds = SyntheticBlobs::new(50, 3, 2).generate(&mut rng);
        let outcome = DensityPeaks::new(2).fit(ds.features()).unwrap();
        assert!(outcome.cutoff_distance > 0.0);
    }
}
