//! # sls-rbm
//!
//! Umbrella crate for the *self-learning local supervision* (multi-clustering
//! integration) RBM workspace. It re-exports the public API of every member
//! crate so downstream users — and the examples and integration tests of this
//! repository — can depend on a single crate.
//!
//! The workspace reproduces Chu et al.'s unsupervised feature-learning
//! architecture in which multiple clusterings (density peaks, k-means and
//! affinity propagation) are integrated through unanimous voting into *local
//! credible clusters*, which then steer the contrastive-divergence update of
//! an RBM (binary data, `slsRBM`) or a Gaussian-visible RBM (real-valued
//! data, `slsGRBM`) so that hidden features of the same local cluster
//! constrict together while different local clusters disperse.
//!
//! ## Crate map
//!
//! | Module | Source crate | Contents |
//! |--------|--------------|----------|
//! | [`linalg`] | `sls-linalg` | dense matrices, products, statistics |
//! | [`datasets`] | `sls-datasets` | synthetic MSRA-MM / UCI style corpora, Iris, CSV |
//! | [`clustering`] | `sls-clustering` | k-means, density peaks, affinity propagation |
//! | [`metrics`] | `sls-metrics` | accuracy, purity, Rand, FMI, NMI |
//! | [`consensus`] | `sls-consensus` | label alignment, unanimous voting, local supervision |
//! | [`rbm`] | `sls-rbm-core` | RBM, GRBM, slsRBM, slsGRBM, pipelines, artifacts |
//! | [`serve`] | `sls-serve` | artifact registry, HTTP JSON inference server, client |
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use sls_rbm::datasets::SyntheticBlobs;
//! use sls_rbm::rbm::{SlsGrbmPipeline, SlsPipelineConfig};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let dataset = SyntheticBlobs::new(90, 8, 3).separation(4.0).generate(&mut rng);
//! let config = SlsPipelineConfig::quick_demo();
//! let outcome = SlsGrbmPipeline::new(config)
//!     .run(dataset.features(), &mut rng)
//!     .expect("pipeline runs");
//! assert_eq!(outcome.hidden_features.rows(), 90);
//! ```

pub use sls_clustering as clustering;
pub use sls_consensus as consensus;
pub use sls_datasets as datasets;
pub use sls_linalg as linalg;
pub use sls_metrics as metrics;
pub use sls_rbm_core as rbm;
pub use sls_serve as serve;

/// Workspace version string, taken from the umbrella crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_is_nonempty() {
        assert!(!VERSION.is_empty());
    }

    /// Each re-exported module must expose its headline type under the
    /// umbrella paths advertised by the crate-map table above.
    #[test]
    fn every_reexported_module_exposes_its_headline_type() {
        let identity = linalg::Matrix::identity(2);
        assert_eq!(identity[(0, 0)], 1.0);

        let spec =
            datasets::DatasetSpec::new("Smoke", "SM", datasets::DataFamily::Synthetic, 4, 2, 2);
        assert_eq!(spec.code, "SM");

        let kmeans = clustering::KMeans::new(2);
        assert_eq!(clustering::Clusterer::name(&kmeans), "K-means");

        let supervision = consensus::LocalSupervision::from_consensus(
            &[Some(0), Some(0), Some(1), Some(1), None],
            consensus::VotingPolicy::Unanimous,
        )
        .expect("valid consensus labels");
        assert_eq!(supervision.n_clusters(), 2);

        let report =
            metrics::EvaluationReport::evaluate(&[0, 0, 1], &[0, 0, 1]).expect("valid labels");
        assert_eq!(report.accuracy, 1.0);

        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let model = rbm::Rbm::new(3, 2, &mut rng);
        assert_eq!(rbm::BoltzmannMachine::params(&model).n_visible(), 3);

        let artifact = rbm::PipelineArtifact::from_params(
            rbm::BoltzmannMachine::params(&model).clone(),
            rbm::ModelKind::Rbm,
        );
        let mut registry = serve::ModelRegistry::new();
        registry.insert("smoke", artifact);
        assert_eq!(registry.len(), 1);
    }
}
