//! Domain scenario 3: train once, persist the model, reload it later for
//! feature extraction — the workflow a downstream application would use when
//! the encoder is trained offline and served elsewhere.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_rbm::consensus::{LocalSupervision, VotingPolicy};
use sls_rbm::datasets::{binarize_median, generate_uci_dataset, UciDatasetId};
use sls_rbm::rbm::{
    load_params_json, save_params_json, BoltzmannMachine, SlsConfig, SlsRbm, TrainConfig,
};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(19);
    let ds = generate_uci_dataset(UciDatasetId::SpectHeart, &mut rng);
    let data = binarize_median(ds.features());
    println!("training slsRBM on {}", ds.spec().summary());

    // Cheap supervision for the demo: three k-means restarts + unanimity.
    let partitions: Vec<Vec<usize>> = (0..3)
        .map(|seed| {
            sls_rbm::clustering::KMeans::new(2)
                .fit(&data, &mut ChaCha8Rng::seed_from_u64(seed))
                .expect("k-means")
                .assignment
                .labels()
                .to_vec()
        })
        .collect();
    let supervision = sls_rbm::consensus::LocalSupervisionBuilder::new(2)
        .with_policy(VotingPolicy::Unanimous)
        .build_from_partitions(&partitions)
        .expect("supervision");
    print_supervision(&supervision);

    let mut model = SlsRbm::new(data.cols(), 12, &mut rng);
    let history = model
        .train(
            &data,
            &supervision,
            TrainConfig::default()
                .with_learning_rate(0.05)
                .with_epochs(10),
            SlsConfig::paper_rbm(),
            &mut rng,
        )
        .expect("training");
    println!(
        "trained for {} epochs, reconstruction error {:.4} -> {:.4}",
        history.epochs.len(),
        history.initial_error().unwrap(),
        history.final_error().unwrap()
    );

    // Persist the parameters and reload them into a fresh model.
    let path = std::env::temp_dir().join("sls_rbm_example_model.json");
    save_params_json(model.params(), &path).expect("save model");
    println!("model saved to {}", path.display());

    let reloaded = SlsRbm::from_params(load_params_json(&path).expect("load model"));
    let original_features = model.hidden_features(&data).expect("features");
    let reloaded_features = reloaded.hidden_features(&data).expect("features");
    assert!(original_features.approx_eq(&reloaded_features, 1e-12));
    println!(
        "reloaded model reproduces identical hidden features for {} instances x {} hidden units",
        reloaded_features.rows(),
        reloaded_features.cols()
    );
    std::fs::remove_file(&path).ok();
}

fn print_supervision(supervision: &LocalSupervision) {
    let summary = supervision.summary();
    println!(
        "supervision: {} local clusters, sizes {}..{}, coverage {:.0}%",
        summary.n_clusters,
        summary.min_cluster_size,
        summary.max_cluster_size,
        summary.coverage * 100.0
    );
}
