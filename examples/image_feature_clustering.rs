//! Domain scenario 1: unsupervised clustering of high-dimensional image
//! features (the paper's MSRA-MM 2.0 use case, Section V-C).
//!
//! The example reproduces, for a single dataset (Birthdaycake), the paper's
//! three-way comparison: conventional clustering on the raw image features,
//! clustering on plain GRBM hidden features, and clustering on slsGRBM hidden
//! features guided by multi-clustering integration.
//!
//! ```text
//! cargo run --release --example image_feature_clustering
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_rbm::clustering::{Clusterer, DensityPeaks, KMeans};
use sls_rbm::consensus::{LocalSupervisionBuilder, VotingPolicy};
use sls_rbm::datasets::{generate_msra_dataset, standardize_columns, MsraDatasetId};
use sls_rbm::linalg::Matrix;
use sls_rbm::metrics::EvaluationReport;
use sls_rbm::rbm::{BoltzmannMachine, CdTrainer, Grbm, SlsConfig, SlsGrbm, TrainConfig};

/// Keep the example fast: a 300 x 128 slice of the full 932 x 892 dataset,
/// sampled with a column stride so the informative/irrelevant mix of the
/// original is preserved.
fn load_slice() -> (Matrix, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let ds = generate_msra_dataset(MsraDatasetId::Birthdaycake, &mut rng);
    let (n, d, total) = (300, 128, ds.n_features());
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..d).map(|j| ds.features()[(i, j * total / d)]).collect())
        .collect();
    let features = standardize_columns(&Matrix::from_rows(&rows).unwrap()).unwrap();
    (features, ds.labels()[..n].to_vec())
}

fn evaluate(name: &str, labels: &[usize], truth: &[usize]) {
    let report = EvaluationReport::evaluate(labels, truth).expect("evaluation");
    println!(
        "{:<26}{:>10.4}{:>10.4}{:>10.4}",
        name, report.accuracy, report.purity, report.fmi
    );
}

fn main() {
    let (data, truth) = load_slice();
    let k = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    println!(
        "Birthdaycake (BC) slice: {} instances x {} features, {k} classes\n",
        data.rows(),
        data.cols()
    );
    println!(
        "{:<26}{:>10}{:>10}{:>10}",
        "pipeline", "accuracy", "purity", "FMI"
    );

    // --- conventional clustering on raw features ---------------------------
    let dp_raw = DensityPeaks::new(k).fit(&data).expect("DP").assignment;
    let km_raw = KMeans::new(k)
        .fit(&data, &mut rng)
        .expect("K-means")
        .assignment;
    evaluate("DP (raw)", dp_raw.labels(), &truth);
    evaluate("K-means (raw)", km_raw.labels(), &truth);

    // --- plain GRBM hidden features -----------------------------------------
    let train = TrainConfig::default()
        .with_learning_rate(5e-3)
        .with_epochs(15);
    let mut grbm = Grbm::new(data.cols(), 32, &mut rng);
    CdTrainer::new(train)
        .unwrap()
        .train(&mut grbm, &data, &mut rng)
        .expect("CD training");
    let grbm_features = grbm.hidden_probabilities(&data).expect("features");
    let km_grbm = KMeans::new(k)
        .fit(&grbm_features, &mut rng)
        .expect("K-means")
        .assignment;
    evaluate("K-means + GRBM", km_grbm.labels(), &truth);

    // --- slsGRBM: multi-clustering integration as supervision ---------------
    let ap_raw = sls_rbm::clustering::AffinityPropagation::default()
        .with_target_clusters(k)
        .cluster(&data, &mut rng)
        .expect("AP");
    let partitions = vec![
        dp_raw.labels().to_vec(),
        km_raw.labels().to_vec(),
        ap_raw.labels().to_vec(),
    ];
    let supervision = LocalSupervisionBuilder::new(k)
        .with_policy(VotingPolicy::Unanimous)
        .build_from_partitions(&partitions)
        .expect("unanimous voting supervision");
    println!(
        "\nself-learning local supervision: {} clusters, {:.0}% coverage\n",
        supervision.n_clusters(),
        supervision.summary().coverage * 100.0
    );

    let mut sls = SlsGrbm::new(data.cols(), 32, &mut rng);
    let sls_config = SlsConfig::paper_grbm().with_supervision_learning_rate(0.2);
    sls.train(&data, &supervision, train, sls_config, &mut rng)
        .expect("sls training");
    let sls_features = sls.hidden_features(&data).expect("features");
    let km_sls = KMeans::new(k)
        .fit(&sls_features, &mut rng)
        .expect("K-means")
        .assignment;
    let dp_sls = DensityPeaks::new(k)
        .fit(&sls_features)
        .expect("DP")
        .assignment;
    println!(
        "{:<26}{:>10}{:>10}{:>10}",
        "pipeline", "accuracy", "purity", "FMI"
    );
    evaluate("K-means + slsGRBM", km_sls.labels(), &truth);
    evaluate("DP + slsGRBM", dp_sls.labels(), &truth);
}
