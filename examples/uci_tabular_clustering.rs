//! Domain scenario 2: unsupervised clustering of binary-encoded tabular data
//! (the paper's UCI use case, Section V-D), using the slsRBM pipeline and the
//! deterministic Iris stand-in.
//!
//! ```text
//! cargo run --release --example uci_tabular_clustering
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_rbm::clustering::KMeans;
use sls_rbm::consensus::VotingPolicy;
use sls_rbm::datasets::{generate_uci_dataset, UciDatasetId};
use sls_rbm::metrics::EvaluationReport;
use sls_rbm::rbm::{Preprocessing, RbmPipeline, SlsPipelineConfig, SlsRbmPipeline, TrainConfig};

fn evaluate(name: &str, features: &sls_rbm::linalg::Matrix, truth: &[usize], k: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let assignment = KMeans::new(k)
        .fit(features, &mut rng)
        .expect("k-means")
        .assignment;
    let report = EvaluationReport::evaluate(assignment.labels(), truth).expect("evaluation");
    println!(
        "{:<28}{:>10.4}{:>12.4}{:>10.4}",
        name, report.accuracy, report.rand_index, report.fmi
    );
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    println!(
        "{:<10}{:<28}{:>10}{:>12}{:>10}",
        "dataset", "pipeline", "accuracy", "Rand", "FMI"
    );

    for id in [UciDatasetId::Iris, UciDatasetId::BreastCancerWisconsin] {
        let ds = generate_uci_dataset(id, &mut rng);
        let k = ds.n_classes();
        println!("{}", ds.spec().summary());

        // Shared configuration: binary-visible models on median-binarised
        // features, k clusters, a fast training schedule.
        let config = SlsPipelineConfig::paper_rbm(k)
            .with_hidden(16)
            .with_train(
                TrainConfig::default()
                    .with_learning_rate(0.05)
                    .with_epochs(15)
                    .with_batch_size(32),
            )
            .with_voting(VotingPolicy::Unanimous)
            .with_preprocessing(Preprocessing::BinarizeMedian);

        // Raw binarised features (what the conventional clusterers see).
        let baseline = RbmPipeline::new(config)
            .run(ds.features(), &mut rng)
            .expect("RBM pipeline");
        evaluate(
            "raw (binarised) + K-means",
            &baseline.preprocessed,
            ds.labels(),
            k,
        );
        evaluate(
            "RBM features + K-means",
            &baseline.hidden_features,
            ds.labels(),
            k,
        );

        // Full slsRBM pipeline (supervision + constrict/disperse training).
        let sls = SlsRbmPipeline::new(config)
            .run(ds.features(), &mut rng)
            .expect("slsRBM pipeline");
        evaluate(
            "slsRBM features + K-means",
            &sls.hidden_features,
            ds.labels(),
            k,
        );
        if let Some(summary) = sls.supervision {
            println!(
                "    (supervision: {} local clusters, {:.0}% coverage)\n",
                summary.n_clusters,
                summary.coverage * 100.0
            );
        }
    }
}
