//! Quickstart: run the full slsGRBM pipeline on a small synthetic dataset
//! and compare k-means clustering on raw features vs learned hidden features.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sls_rbm::clustering::KMeans;
use sls_rbm::datasets::SyntheticBlobs;
use sls_rbm::metrics::EvaluationReport;
use sls_rbm::rbm::{SlsGrbmPipeline, SlsPipelineConfig};

fn main() {
    // Everything is seeded, so the example prints the same numbers on every
    // run.
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // 1. A small synthetic dataset: 210 instances, 16 features, 3 weakly
    //    separated classes with half the dimensions carrying no signal —
    //    the regime the paper targets.
    let dataset = SyntheticBlobs::new(210, 16, 3)
        .separation(3.0)
        .irrelevant_fraction(0.5)
        .generate(&mut rng);
    println!("dataset: {}", dataset.spec().summary());

    // 2. Cluster the raw features directly (the conventional baseline).
    let raw_assignment = KMeans::new(3)
        .fit(dataset.features(), &mut rng)
        .expect("k-means on raw features")
        .assignment;
    let raw_report =
        EvaluationReport::evaluate(raw_assignment.labels(), dataset.labels()).expect("evaluate");

    // 3. Run the slsGRBM pipeline: standardise, build self-learning local
    //    supervision from DP/K-means/AP via unanimous voting, train the
    //    Gaussian-visible model with the constrict/disperse objective, and
    //    extract hidden features.
    let config = SlsPipelineConfig::quick_demo().with_hidden(16);
    let outcome = SlsGrbmPipeline::new(config)
        .run(dataset.features(), &mut rng)
        .expect("slsGRBM pipeline");
    if let Some(supervision) = outcome.supervision {
        println!(
            "supervision: {} local clusters covering {:.0}% of the data",
            supervision.n_clusters,
            supervision.coverage * 100.0
        );
    }

    // 4. Cluster the learned hidden features and compare.
    let sls_assignment = KMeans::new(3)
        .fit(&outcome.hidden_features, &mut rng)
        .expect("k-means on hidden features")
        .assignment;
    let sls_report =
        EvaluationReport::evaluate(sls_assignment.labels(), dataset.labels()).expect("evaluate");

    println!();
    println!(
        "{:<26}{:>10}{:>10}{:>10}",
        "representation", "accuracy", "purity", "FMI"
    );
    println!(
        "{:<26}{:>10.4}{:>10.4}{:>10.4}",
        "raw features + K-means", raw_report.accuracy, raw_report.purity, raw_report.fmi
    );
    println!(
        "{:<26}{:>10.4}{:>10.4}{:>10.4}",
        "slsGRBM features + K-means", sls_report.accuracy, sls_report.purity, sls_report.fmi
    );
    println!();
    println!(
        "reconstruction error over training: {:.4} -> {:.4} (the sls objective trades \
         reconstruction fidelity for constricted/dispersed hidden features)",
        outcome.history.initial_error().unwrap_or(f64::NAN),
        outcome.history.final_error().unwrap_or(f64::NAN)
    );
}
