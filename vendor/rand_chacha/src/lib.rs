//! Offline vendored [`ChaCha8Rng`]: the ChaCha stream cipher (Bernstein
//! 2008) with 8 rounds, implemented from the published specification and
//! exposed through the vendored `rand` traits.
//!
//! Only determinism and statistical quality matter for this workspace (the
//! generator drives reproducible experiments, not cryptography).

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// "expand 32-byte k", the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A reproducible random number generator based on ChaCha with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words from the seed (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..13); words 14..15 stay zero.
    counter: u64,
    /// Current output block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word in `block`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        let mut working = state;
        for _ in 0..4 {
            // One double round: four column rounds, four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..24 {
            again.next_u32();
        }
        assert_eq!(again.next_u32(), first[24]);
    }

    #[test]
    fn output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 32000 bits, expect ~16000 set.
        assert!((15_000..17_000).contains(&ones), "ones {ones}");
    }
}
