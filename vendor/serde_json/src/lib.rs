//! Offline vendored JSON front end for the workspace's `serde` facade:
//! [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! [`serde::Value`] tree.
//!
//! Mirrors the upstream `serde_json` conventions the workspace relies on:
//! objects keep field order, non-finite floats serialize as `null`, and
//! numbers round-trip through Rust's shortest-representation float
//! formatting.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an error on malformed JSON or when the parsed tree does not
/// match the target type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (pos, item) in items.iter().enumerate() {
                if pos > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (pos, (key, item)) in entries.iter().enumerate() {
                if pos > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` on f64 is the shortest representation that round-trips, so
        // parsing the emitted text recovers the exact bits.
        let text = x.to_string();
        out.push_str(&text);
        // Keep floats syntactically distinct from integers, like serde_json.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON input",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {} of JSON input",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // Unescaped runs are valid UTF-8 because the input is a &str and
            // we only split at ASCII quote/backslash bytes.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence in JSON string"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::new(e.to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}` in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated JSON string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Fall back to float for magnitudes beyond i64.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error::new(format!("invalid number `{text}`: {e}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("blob \"x\"\n".into())),
            ("count".into(), Value::Int(-3)),
            ("ratio".into(), Value::Float(0.1 + 0.2)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&ValueWrapper(value.clone())).unwrap();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn pretty_output_parses_back() {
        let value = Value::Array(vec![Value::Int(1), Value::Object(vec![])]);
        let text = to_string_pretty(&ValueWrapper(value.clone())).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse_value(&text).unwrap(), value);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0, -2.5e-8, f64::MAX, 1.0 / 3.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_value("{ not json }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("\"open").is_err());
        assert!(parse_value("12 34").is_err());
    }

    /// Adapter so the tests above can feed raw `Value`s through the
    /// `Serialize`-based entry points.
    struct ValueWrapper(Value);

    impl Serialize for ValueWrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
