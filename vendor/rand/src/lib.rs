//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the thin slice of `rand` it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`;
//! * [`SeedableRng`] with the same SplitMix64-based `seed_from_u64` byte
//!   expansion as upstream `rand` 0.8, so seeds produce the same key
//!   material for the vendored ChaCha generator;
//! * [`thread_rng`] backed by a per-thread generator seeded from the
//!   system hasher.
//!
//! The implementations follow the published algorithms; no upstream source
//! code was copied.

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness: an infinite stream of uniform bits.
///
/// Object safe, so algorithms can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator that can be reproducibly constructed from a
/// seed.
pub trait SeedableRng: Sized {
    /// Raw seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw key material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same expansion
    /// `rand` 0.8 uses) and builds the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 constants (Steele, Lea & Flood 2014).
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling from range-like types, the argument of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

uint_sample_range!(u8, u16, u32, u64, usize);

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $t = Standard.sample(rng);
                let value = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if value < self.end { value } else { self.start }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Draws a uniform value in `[0, span)` by widening multiplication with a
/// rejection step (Lemire 2019), avoiding modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// A fast, non-cryptographic generator for [`thread_rng`]: xoshiro256++
/// (Blackman & Vigna 2019).
#[derive(Debug, Clone)]
pub struct ThreadRng {
    state: [u64; 4],
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = (s[0].wrapping_add(s[3])).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ThreadRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u64; 4];
        for (word, chunk) in state.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if state.iter().all(|&w| w == 0) {
            state[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { state }
    }
}

/// Returns a generator seeded once per thread from the system hasher's
/// random keys.
pub fn thread_rng() -> ThreadRng {
    use std::hash::{BuildHasher, Hasher};
    // RandomState draws fresh random keys per instance, giving us entropy
    // without any OS-specific code.
    let entropy = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    ThreadRng::seed_from_u64(entropy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = ThreadRng::seed_from_u64(9);
        let mut b = ThreadRng::seed_from_u64(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ThreadRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_in_half_open_interval() {
        let mut rng = ThreadRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn dyn_rng_core_reborrows_as_rng() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..5)
        }
        let mut rng = ThreadRng::seed_from_u64(3);
        let mut dyn_rng: &mut dyn RngCore = &mut rng;
        let v = draw(&mut dyn_rng);
        assert!(v < 5);
    }
}
