//! The [`Standard`] distribution and the [`Distribution`] trait, mirroring
//! the corresponding `rand` 0.8 items.

use crate::RngCore;

/// Types that can produce values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution of a type: `[0, 1)` for floats, all
/// values for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits, as in rand 0.8's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
