//! Offline vendored serialization facade.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small slice of the `serde` surface the workspace uses: the [`Serialize`]
//! and [`Deserialize`] traits (and their derive macros, re-exported from the
//! companion `serde_derive` proc-macro crate), implemented over a simple
//! in-memory [`Value`] tree instead of upstream serde's visitor data model.
//! The `serde_json` vendored crate renders and parses that tree as JSON.
//!
//! The derive macros support exactly what the workspace needs: structs with
//! named fields, unit enum variants and newtype enum variants.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory tree representing any serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (also covers all unsigned values this workspace
    /// produces: counts, shapes and indices).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] tree does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The "expected X, found Y" error for mismatched value kinds.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        Self::custom(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field in an object's entries, for derived `Deserialize` impls.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!(
                            "integer {i} out of range for {}", stringify!($t),
                        ))),
                    other => Err(DeError::mismatch("integer", other)),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // `null` (how non-finite floats serialize) is rejected for
                    // a plain float, matching upstream serde_json; only
                    // `Option<f32/f64>` accepts it (as `None`).
                    other => Err(DeError::mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::mismatch("array of length 2", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            <Vec<usize>>::from_value(&vec![1usize, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(<Option<f64>>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <(usize, f64)>::from_value(&(3usize, 0.5f64).to_value()).unwrap(),
            (3, 0.5)
        );
    }

    #[test]
    fn kind_mismatch_errors() {
        assert!(usize::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(field(&[], "missing").is_err());
    }
}
