//! Offline vendored property-testing mini-framework.
//!
//! Exposes the slice of the `proptest` API used by this workspace's test
//! suites: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`Just`], [`collection::vec`], and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline stub: no input
//! shrinking (a failing case panics with the generated values via the
//! assertion message) and a fixed deterministic seed per test derived from
//! the test name, so CI failures always reproduce locally.

pub mod collection;
pub mod test_runner;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

use test_runner::TestRng;

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 128;

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, make }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    make: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.make)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.below((hi - lo) as u64 + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let value = self.start + (self.end - self.start) * rng.unit_f64();
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let value = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Runs each `#[test]` body against [`CASES`] freshly generated inputs.
///
/// `prop_assume!(cond)` skips the current case; `prop_assert!` /
/// `prop_assert_eq!` behave like the standard assertions.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ( $($strategy,)+ );
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    let ( $($pat,)+ ) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+); };
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|hi| (Just(hi), 0usize..hi))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn flat_map_respects_dependency((hi, lo) in pair()) {
            prop_assert!(lo < hi, "lo {lo} hi {hi}");
        }

        #[test]
        fn vectors_have_requested_sizes(v in crate::collection::vec(0usize..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn map_transforms_values() {
        let strategy = (1usize..4).prop_map(|n| vec![0.0f64; n]);
        let mut rng = crate::test_runner::TestRng::from_name("map");
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strategy = (0usize..1000, 0usize..1000);
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        for _ in 0..20 {
            assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        }
    }
}
