//! Collection strategies (`proptest::collection::vec`).

use crate::test_runner::TestRng;
use crate::Strategy;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_inclusive: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            lo: range.start,
            hi_inclusive: range.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        Self {
            lo: *range.start(),
            hi_inclusive: *range.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size` (a `usize` for an exact length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
