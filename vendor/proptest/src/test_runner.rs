//! Deterministic random source driving the strategies.

/// A SplitMix64 generator seeded from the test name, so every test draws an
/// independent but fully reproducible input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: hash }
    }

    /// Next 64 uniformly random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
