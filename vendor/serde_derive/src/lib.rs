//! Derive macros for the vendored `serde` facade.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable offline). Supported input shapes — the only ones
//! the workspace uses:
//!
//! * structs with named fields;
//! * enums whose variants are unit variants or one-field newtype variants.
//!
//! Anything else (tuple structs, struct variants, generics) produces a
//! compile error naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the facade's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives the facade's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named fields of a struct.
    Struct(Vec<String>),
    /// Enum variants: name plus whether the variant carries one payload.
    Enum(Vec<(String, bool)>),
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("::core::compile_error!({message:?});")
                .parse()
                .unwrap()
        }
    };
    let code = match (direction, &shape) {
        (Direction::Serialize, Shape::Struct(fields)) => serialize_struct(&name, fields),
        (Direction::Deserialize, Shape::Struct(fields)) => deserialize_struct(&name, fields),
        (Direction::Serialize, Shape::Enum(variants)) => serialize_enum(&name, variants),
        (Direction::Deserialize, Shape::Enum(variants)) => deserialize_enum(&name, variants),
    };
    code.parse().unwrap()
}

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::field(__entries, {f:?})?)?,")
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __entries = __value.as_object()\n\
                     .ok_or_else(|| ::serde::DeError::mismatch(\"object\", __value))?;\n\
                 ::std::result::Result::Ok(Self {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, bool)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(variant, has_payload)| {
            if *has_payload {
                format!(
                    "{name}::{variant}(__inner) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from({variant:?}), \
                          ::serde::Serialize::to_value(__inner))]),"
                )
            } else {
                format!(
                    "{name}::{variant} => \
                         ::serde::Value::Str(::std::string::String::from({variant:?})),"
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, bool)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, has_payload)| !has_payload)
        .map(|(variant, _)| format!("{variant:?} => ::std::result::Result::Ok({name}::{variant}),"))
        .collect();
    let payload_arms: String = variants
        .iter()
        .filter(|(_, has_payload)| *has_payload)
        .map(|(variant, _)| {
            format!(
                "{variant:?} => ::std::result::Result::Ok(\
                     {name}::{variant}(::serde::Deserialize::from_value(__inner)?)),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\n\
                             ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__key, __inner) = &__entries[0];\n\
                         match __key.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\n\
                                 ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\n\
                         ::serde::DeError::mismatch(\"enum variant\", __other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

/// Parses a struct/enum definition into its name and shape.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => {
            return Err(format!(
                "serde derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive: generic type `{name}` is not supported"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group,
        _ => {
            return Err(format!(
                "serde derive: `{name}` must be a brace-delimited {keyword} (tuple/unit \
                 structs are not supported)"
            ))
        }
    };
    match keyword.as_str() {
        "struct" => Ok((name, Shape::Struct(parse_named_fields(body.stream())?))),
        "enum" => Ok((
            name.clone(),
            Shape::Enum(parse_variants(&name, body.stream())?),
        )),
        other => Err(format!("serde derive: unsupported item kind `{other}`")),
    }
}

/// Advances past leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Extracts the field names of a named-field struct body. Field types are
/// never needed: the generated code lets inference pick the right
/// `Deserialize` impl from the struct definition itself.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => return Err(format!("serde derive: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde derive: field `{name}` is not a named field (tuple structs are \
                     not supported)"
                ))
            }
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        // `<` / `>` appear as plain puncts in token trees, so track nesting
        // to survive types like `BTreeMap<usize, Vec<usize>>`.
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(i) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // consume the comma (or run off the end)
        fields.push(name);
    }
    Ok(fields)
}

/// Extracts `(variant_name, has_payload)` pairs from an enum body.
fn parse_variants(enum_name: &str, body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde derive: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let mut has_payload = false;
        match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let payload_fields = count_top_level_items(group.stream());
                if payload_fields != 1 {
                    return Err(format!(
                        "serde derive: variant `{enum_name}::{name}` has {payload_fields} \
                         fields; only unit and single-field newtype variants are supported"
                    ));
                }
                has_payload = true;
                i += 1;
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde derive: struct variant `{enum_name}::{name}` is not supported"
                ));
            }
            _ => {}
        }
        // Skip an optional discriminant (`= expr`) up to the next comma.
        while let Some(token) = tokens.get(i) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1;
        variants.push((name, has_payload));
    }
    Ok(variants)
}

/// Counts comma-separated items at angle-bracket depth 0 (e.g. fields of a
/// tuple variant).
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut items = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    saw_token_since_comma = false;
                    items += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    // A trailing comma does not add an item.
    if !saw_token_since_comma {
        items -= 1;
    }
    items
}
