//! Offline vendored micro-benchmark harness exposing the small slice of the
//! `criterion` API the workspace's benches use: [`Criterion`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is warmed
//! up briefly and then timed over an adaptive number of iterations; the
//! median per-iteration time is printed. That is enough to compare hot
//! paths between commits while staying dependency-free.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the criterion name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Target measuring time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // Warm-up pass: also calibrates the per-call cost.
        f(&mut bencher);
        let warmup = bencher.last_sample().unwrap_or(Duration::from_micros(1));
        // Choose a round count aiming for TARGET total time, then measure.
        let rounds = (TARGET.as_nanos() / warmup.as_nanos().max(1)).clamp(1, 100) as usize;
        bencher.samples.clear();
        for _ in 0..rounds {
            f(&mut bencher);
        }
        let mut samples = bencher.samples;
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
        println!(
            "bench: {id:<50} median {median:>12.3?} ({} samples)",
            samples.len()
        );
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs and times one iteration of the benchmarked routine.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    fn last_sample(&self) -> Option<Duration> {
        self.samples.last().copied()
    }
}

/// Declares a group of benchmark functions as a single runnable function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_returns_self() {
        let mut criterion = Criterion::default();
        let mut runs = 0usize;
        criterion.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2 + 2)
            })
        });
        assert!(runs >= 2);
    }
}
